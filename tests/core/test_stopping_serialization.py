"""Stopping criteria and agent checkpointing tests."""

import numpy as np
import pytest

from repro.core import (
    CombinedCriterion,
    FixedBudget,
    GiPHAgent,
    Patience,
    RelativeImprovement,
    TargetValue,
    run_search,
)
from repro.core.serialization import embedding_kind_of, load_agent, save_agent
from repro.sim import MakespanObjective


class TestStoppingCriteria:
    def test_fixed_budget(self):
        c = FixedBudget(steps=3)
        assert not c.should_stop([5.0, 4.0, 3.0], [5.0, 4.0, 3.0])  # 2 steps
        assert c.should_stop([5.0, 4.0, 3.0, 3.0], [5.0, 4.0, 3.0, 3.0])

    def test_fixed_budget_validation(self):
        with pytest.raises(ValueError):
            FixedBudget(steps=0)

    def test_patience_fires_on_stall(self):
        c = Patience(patience=2)
        best = [5.0, 4.0, 4.0, 4.0]
        assert c.should_stop([5.0, 4.0, 4.5, 4.2], best)

    def test_patience_resets_on_improvement(self):
        c = Patience(patience=2)
        best = [5.0, 4.0, 4.0, 3.0]
        assert not c.should_stop([5.0, 4.0, 4.5, 3.0], best)

    def test_patience_min_steps(self):
        c = Patience(patience=1, min_steps=5)
        assert not c.should_stop([5.0, 5.0], [5.0, 5.0])

    def test_relative_improvement(self):
        c = RelativeImprovement(threshold=0.05, window=2)
        # 1% improvement over the window -> stop
        assert c.should_stop([100.0, 100, 100, 99], [100.0, 100.0, 99.5, 99.0])
        # 50% improvement -> keep going
        assert not c.should_stop([100.0, 60, 55, 50], [100.0, 100.0, 55.0, 50.0])

    def test_target_value(self):
        c = TargetValue(target=2.0)
        assert c.should_stop([3.0], [3.0]) is False
        assert c.should_stop([3.0, 1.9], [3.0, 1.9])

    def test_combined_or_semantics(self):
        c = CombinedCriterion((TargetValue(0.0), FixedBudget(2)))
        assert not c.should_stop([5.0, 4.0], [5.0, 4.0])
        assert c.should_stop([5.0, 4.0, 3.0], [5.0, 4.0, 3.0])

    def test_combined_empty_rejected(self):
        with pytest.raises(ValueError):
            CombinedCriterion(())

    def test_run_search_with_stopping(self, diamond_problem):
        rng = np.random.default_rng(0)
        agent = GiPHAgent(rng, embedding="giph-ne-pol")
        trace = run_search(
            agent,
            diamond_problem,
            MakespanObjective(),
            [0, 0, 0, 2],
            episode_length=50,
            stopping=Patience(patience=2),
        )
        assert trace.num_steps < 50  # stopped early

    def test_run_search_target_stops_immediately(self, diamond_problem):
        rng = np.random.default_rng(1)
        agent = GiPHAgent(rng, embedding="giph-ne-pol")
        trace = run_search(
            agent,
            diamond_problem,
            MakespanObjective(),
            [0, 0, 0, 2],
            episode_length=50,
            stopping=TargetValue(target=float("inf")),
        )
        assert trace.num_steps == 1


class TestSerialization:
    @pytest.mark.parametrize("kind", ["giph", "giph-3", "giph-ne", "graphsage-ne", "giph-ne-pol"])
    def test_roundtrip_all_kinds(self, tmp_path, diamond_problem, kind):
        rng = np.random.default_rng(2)
        agent = GiPHAgent(rng, embedding=kind)
        path = save_agent(agent, tmp_path / "agent.npz")
        loaded = load_agent(path, np.random.default_rng(3))
        assert embedding_kind_of(loaded) == kind
        from repro.core import GpNetBuilder

        net = GpNetBuilder(diamond_problem).build([0, 0, 0, 2])
        np.testing.assert_allclose(
            agent.embedding(net).data, loaded.embedding(net).data
        )
        mask = ~net.is_pivot
        lp1 = agent.policy.log_probs(agent.embedding(net), mask).data
        lp2 = loaded.policy.log_probs(loaded.embedding(net), mask).data
        np.testing.assert_allclose(lp1, lp2)

    def test_suffix_added(self, tmp_path):
        agent = GiPHAgent(np.random.default_rng(0), embedding="giph-ne-pol")
        path = save_agent(agent, tmp_path / "checkpoint")
        assert path.suffix == ".npz" and path.exists()

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="checkpoint"):
            load_agent(path, np.random.default_rng(0))

    def test_kind_of_k_step(self):
        agent = GiPHAgent(np.random.default_rng(0), embedding="giph-7")
        assert embedding_kind_of(agent) == "giph-7"
