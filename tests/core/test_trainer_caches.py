"""Trainer per-problem caches: evaluator and gpNet builder evict in lockstep.

The trainer keeps two sibling caches keyed by problem instance — the
EvaluatorPool's evaluators and its own GpNetBuilders.  They used to age
out on independent access patterns, so a long problem sweep could pin a
cache-laden builder after its evaluator was gone (or vice versa).  Now
the pool's LRU drives both through its eviction hook.
"""

import numpy as np

from repro.core import GiPHAgent, PlacementProblem, ReinforceConfig, ReinforceTrainer
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.runtime.evaluator import EvaluatorPool
from repro.sim import MakespanObjective


def make_problems(count, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        graph = generate_task_graph(TaskGraphParams(num_tasks=5), rng)
        network = generate_device_network(DeviceNetworkParams(num_devices=3), rng)
        out.append(PlacementProblem(graph, network))
    return out


def make_trainer(max_cached_problems):
    agent = GiPHAgent(np.random.default_rng(0))
    return ReinforceTrainer(
        agent,
        MakespanObjective(),
        ReinforceConfig(episodes=1),
        max_cached_problems=max_cached_problems,
    )


def paired_ids(trainer):
    evaluator_ids = set(trainer._evaluators._by_problem)
    builder_ids = set(trainer._builders)
    return evaluator_ids, builder_ids


class TestLockstepEviction:
    def test_sweep_keeps_pairs_in_lockstep(self):
        trainer = make_trainer(max_cached_problems=2)
        for problem in make_problems(5):
            trainer.evaluator_for(problem)
            trainer._builder_for(problem)
            evaluator_ids, builder_ids = paired_ids(trainer)
            assert evaluator_ids == builder_ids
            assert len(evaluator_ids) <= 2

    def test_builder_access_refreshes_the_pair(self):
        trainer = make_trainer(max_cached_problems=2)
        first, second, third = make_problems(3)
        trainer._builder_for(first)
        trainer._builder_for(second)
        # Touching only the builder must refresh the evaluator's LRU slot
        # too, otherwise the pair would split on the next eviction.
        trainer._builder_for(first)
        trainer._builder_for(third)  # evicts `second`, not `first`
        assert first in trainer._evaluators
        assert second not in trainer._evaluators
        evaluator_ids, builder_ids = paired_ids(trainer)
        assert evaluator_ids == builder_ids == {id(first), id(third)}

    def test_evaluator_only_access_drops_stale_builder(self):
        trainer = make_trainer(max_cached_problems=2)
        first, second, third = make_problems(3)
        trainer._builder_for(first)
        trainer._builder_for(second)
        trainer.evaluator_for(third)  # evicts `first`'s evaluator...
        assert id(first) not in trainer._builders  # ...and its builder
        evaluator_ids, builder_ids = paired_ids(trainer)
        assert builder_ids <= evaluator_ids

    def test_training_across_many_problems_stays_bounded(self):
        trainer = make_trainer(max_cached_problems=3)
        problems = make_problems(6)
        trainer.train(problems, np.random.default_rng(1), episodes=8)
        evaluator_ids, builder_ids = paired_ids(trainer)
        assert evaluator_ids == builder_ids
        assert len(evaluator_ids) <= 3


class TestEvaluatorPoolEvictionHook:
    def test_hook_receives_evicted_pair(self):
        problems = make_problems(3)
        evicted = []
        pool = EvaluatorPool(
            MakespanObjective(),
            max_problems=2,
            on_evict=lambda pid, ev: evicted.append((pid, ev)),
        )
        held = [pool.get(p) for p in problems]
        assert [pid for pid, _ in evicted] == [id(problems[0])]
        assert evicted[0][1] is held[0]
