"""Churn dynamics: event kinds, config validation, network transforms."""

import numpy as np
import pytest

from repro.devices import ChurnConfig, DeviceNetworkParams, generate_device_network, network_churn


@pytest.fixture
def network():
    return generate_device_network(
        DeviceNetworkParams(num_devices=6, support_prob=0.8), np.random.default_rng(0)
    )


class TestChurnConfigValidation:
    def test_probabilities_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            ChurnConfig(bandwidth_drift_prob=-0.1)
        with pytest.raises(ValueError):
            ChurnConfig(compute_slowdown_prob=1.5)

    def test_probabilities_must_not_exceed_one_jointly(self):
        with pytest.raises(ValueError, match="<= 1"):
            ChurnConfig(bandwidth_drift_prob=0.6, compute_slowdown_prob=0.6)

    def test_factor_ranges_must_be_positive_and_ordered(self):
        with pytest.raises(ValueError, match="drift_range"):
            ChurnConfig(drift_range=(0.9, 0.5))
        with pytest.raises(ValueError, match="slowdown_range"):
            ChurnConfig(slowdown_range=(0.0, 0.5))

    def test_target_must_be_known(self):
        with pytest.raises(ValueError, match="target"):
            ChurnConfig(target="slowest")
        ChurnConfig(target="fastest")  # valid

    def test_seed_fields_still_validated(self):
        with pytest.raises(ValueError):
            ChurnConfig(min_devices=5, max_devices=3)
        with pytest.raises(ValueError):
            ChurnConfig(capacity_decay=0.0)


class TestSoftEvents:
    def test_default_config_emits_only_add_remove(self, network):
        config = ChurnConfig(min_devices=4, max_devices=6, num_changes=12)
        kinds = {e.kind for e in network_churn(network, config, np.random.default_rng(1))}
        assert kinds <= {"add", "remove"}

    def test_drift_only_config_emits_drift_events_with_factors(self, network):
        config = ChurnConfig(
            min_devices=6, max_devices=6, num_changes=6,
            bandwidth_drift_prob=1.0, drift_range=(0.5, 0.9),
        )
        events = list(network_churn(network, config, np.random.default_rng(2)))
        assert [e.kind for e in events] == ["bandwidth-drift"] * 6
        for event in events:
            assert 0.5 <= event.factor <= 0.9
            assert event.uid in event.network

    def test_drift_scales_only_links_of_affected_device(self, network):
        config = ChurnConfig(
            min_devices=6, max_devices=6, num_changes=1,
            bandwidth_drift_prob=1.0, drift_range=(0.5, 0.5),
        )
        [event] = network_churn(network, config, np.random.default_rng(3))
        k = event.network.index_of(event.uid)
        before, after = network.bandwidth, event.network.bandwidth
        m = network.num_devices
        for i in range(m):
            for j in range(m):
                if i == j:
                    assert np.isinf(after[i, j])
                elif i == k or j == k:
                    assert after[i, j] == pytest.approx(0.5 * before[i, j])
                else:
                    assert after[i, j] == before[i, j]

    def test_slowdown_reduces_speed_of_affected_device_only(self, network):
        config = ChurnConfig(
            min_devices=6, max_devices=6, num_changes=4,
            compute_slowdown_prob=1.0, slowdown_range=(0.5, 0.9),
        )
        prev = network
        for event in network_churn(network, config, np.random.default_rng(4)):
            for device in event.network.devices:
                old = prev.devices[prev.index_of(device.uid)]
                if device.uid == event.uid:
                    assert device.speed == pytest.approx(old.speed * event.factor)
                else:
                    assert device.speed == old.speed
            prev = event.network

    def test_fastest_target_always_degrades_top_device(self, network):
        config = ChurnConfig(
            min_devices=6, max_devices=6, num_changes=5,
            compute_slowdown_prob=1.0, target="fastest",
        )
        prev = network
        for event in network_churn(network, config, np.random.default_rng(5)):
            fastest = max(prev.devices, key=lambda d: (d.speed, d.uid))
            assert event.uid == fastest.uid
            prev = event.network

    def test_mixed_probabilities_emit_every_family(self, network):
        config = ChurnConfig(
            min_devices=4, max_devices=6, num_changes=40,
            bandwidth_drift_prob=0.3, compute_slowdown_prob=0.3,
        )
        kinds = {e.kind for e in network_churn(network, config, np.random.default_rng(6))}
        assert kinds == {"add", "remove", "bandwidth-drift", "compute-slowdown"}

    def test_fixed_membership_with_partial_soft_prob_degrades_instead(self, network):
        # min == max leaves no hard move; steps whose draw lands in the
        # add/remove branch must fall back to a soft event, not crash.
        config = ChurnConfig(
            min_devices=6, max_devices=6, num_changes=20,
            bandwidth_drift_prob=0.25, compute_slowdown_prob=0.25,
        )
        events = list(network_churn(network, config, np.random.default_rng(8)))
        assert len(events) == 20
        assert {e.kind for e in events} <= {"bandwidth-drift", "compute-slowdown"}

    def test_fixed_membership_without_soft_events_raises_clearly(self, network):
        config = ChurnConfig(min_devices=6, max_devices=6, num_changes=1)
        with pytest.raises(ValueError, match="no add/remove possible"):
            list(network_churn(network, config, np.random.default_rng(9)))

    def test_same_seed_same_stream(self, network):
        config = ChurnConfig(
            min_devices=4, max_devices=6, num_changes=10,
            bandwidth_drift_prob=0.25, compute_slowdown_prob=0.25,
        )
        a = list(network_churn(network, config, np.random.default_rng(7)))
        b = list(network_churn(network, config, np.random.default_rng(7)))
        assert [(e.kind, e.uid, e.step, e.factor) for e in a] == [
            (e.kind, e.uid, e.step, e.factor) for e in b
        ]
        for ea, eb in zip(a, b):
            assert np.array_equal(ea.network.bandwidth, eb.network.bandwidth)
            assert np.array_equal(ea.network.delay, eb.network.delay)
            assert ea.network.devices == eb.network.devices


class TestNetworkTransforms:
    def test_with_device_speed_replaces_one_speed(self, network):
        uid = network.devices[2].uid
        out = network.with_device_speed(uid, 123.0)
        assert out.devices[2].speed == 123.0
        assert network.devices[2].speed != 123.0  # original untouched
        assert out.devices[0].speed == network.devices[0].speed

    def test_with_device_speed_validates(self, network):
        with pytest.raises(KeyError):
            network.with_device_speed(10_000, 1.0)
        with pytest.raises(ValueError):
            network.with_device_speed(network.devices[0].uid, 0.0)

    def test_with_bandwidth_scaled_global(self, network):
        out = network.with_bandwidth_scaled(0.5)
        off = ~np.eye(network.num_devices, dtype=bool)
        assert np.allclose(out.bandwidth[off], 0.5 * network.bandwidth[off])
        assert np.isinf(np.diag(out.bandwidth)).all()

    def test_with_bandwidth_scaled_validates(self, network):
        with pytest.raises(ValueError):
            network.with_bandwidth_scaled(0.0)
        with pytest.raises(KeyError):
            network.with_bandwidth_scaled(0.5, uid=10_000)
