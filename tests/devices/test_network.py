"""Device network structure, generator, and churn tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    ChurnConfig,
    Device,
    DeviceNetwork,
    DeviceNetworkParams,
    generate_device_network,
    generate_device_networks,
    network_churn,
)


def small_net() -> DeviceNetwork:
    devices = [
        Device(uid=0, speed=10.0, supports=frozenset({0, 1})),
        Device(uid=1, speed=5.0),
        Device(uid=2, speed=20.0, supports=frozenset({0, 1, 2})),
    ]
    bw = np.full((3, 3), 100.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.ones((3, 3)) - np.eye(3)
    return DeviceNetwork(devices, bw, dl)


class TestDevice:
    def test_type0_always_supported(self):
        d = Device(uid=0, speed=1.0, supports=frozenset({3}))
        assert d.supports_requirement(0) and d.supports_requirement(3)

    def test_bad_speed(self):
        with pytest.raises(ValueError):
            Device(uid=0, speed=0.0)


class TestDeviceNetwork:
    def test_basic(self):
        net = small_net()
        assert net.num_devices == 3
        assert net.index_of(2) == 2
        assert 1 in net and 99 not in net

    def test_feasible_devices(self):
        net = small_net()
        assert net.feasible_devices(0) == (0, 1, 2)
        assert net.feasible_devices(1) == (0, 2)
        assert net.feasible_devices(2) == (2,)
        assert net.feasible_devices(9) == ()

    def test_feasible_sets_validates(self):
        net = small_net()
        assert net.feasible_sets([0, 1]) == [(0, 1, 2), (0, 2)]
        with pytest.raises(ValueError, match="no device supports"):
            net.feasible_sets([9])

    def test_duplicate_uids_rejected(self):
        devices = [Device(uid=0, speed=1.0), Device(uid=0, speed=2.0)]
        bw = np.full((2, 2), 10.0)
        np.fill_diagonal(bw, np.inf)
        with pytest.raises(ValueError, match="unique"):
            DeviceNetwork(devices, bw, np.zeros((2, 2)))

    def test_diagonal_validation(self):
        devices = [Device(uid=0, speed=1.0)]
        with pytest.raises(ValueError, match="diagonal bandwidth"):
            DeviceNetwork(devices, np.array([[5.0]]), np.zeros((1, 1)))
        with pytest.raises(ValueError, match="diagonal delay"):
            DeviceNetwork(devices, np.array([[np.inf]]), np.array([[1.0]]))

    def test_shape_validation(self):
        with pytest.raises(ValueError, match=r"\(m, m\)"):
            DeviceNetwork([Device(uid=0, speed=1.0)], np.full((2, 2), np.inf), np.zeros((2, 2)))

    def test_without_device(self):
        net = small_net().without_device(1)
        assert net.num_devices == 2
        assert 1 not in net
        assert net.index_of(2) == 1  # indices re-densified

    def test_without_last_device_rejected(self):
        net = small_net().without_device(0).without_device(1)
        with pytest.raises(ValueError):
            net.without_device(2)

    def test_without_unknown_uid(self):
        with pytest.raises(KeyError):
            small_net().without_device(42)

    def test_with_device(self):
        net = small_net().with_device(
            Device(uid=7, speed=3.0), bandwidth_to=50.0, delay_to=2.0
        )
        assert net.num_devices == 4
        k = net.index_of(7)
        assert net.bandwidth[k, 0] == 50.0 and net.bandwidth[0, k] == 50.0
        assert net.delay[k, 1] == 2.0
        assert np.isinf(net.bandwidth[k, k])

    def test_with_device_duplicate_uid(self):
        with pytest.raises(ValueError, match="already present"):
            small_net().with_device(Device(uid=0, speed=1.0), 10.0, 1.0)

    def test_with_device_per_uid_links(self):
        net = small_net().with_device(
            Device(uid=7, speed=3.0),
            bandwidth_to={0: 10.0, 1: 20.0, 2: 30.0},
            delay_to={0: 1.0, 1: 2.0, 2: 3.0},
        )
        k = net.index_of(7)
        assert net.bandwidth[k, net.index_of(1)] == 20.0
        assert net.delay[k, net.index_of(2)] == 3.0


class TestGenerator:
    def test_count_and_speed_band(self):
        p = DeviceNetworkParams(num_devices=12, mean_speed=10.0, het_speed=0.4)
        net = generate_device_network(p, np.random.default_rng(0))
        assert net.num_devices == 12
        assert all(6.0 <= d.speed <= 14.0 for d in net.devices)

    def test_every_type_covered(self):
        p = DeviceNetworkParams(num_devices=5, num_hardware_types=4, support_prob=0.0)
        net = generate_device_network(p, np.random.default_rng(1))
        for t in range(4):
            assert net.feasible_devices(t), f"type {t} uncovered"

    def test_symmetric_links(self):
        net = generate_device_network(DeviceNetworkParams(num_devices=6), np.random.default_rng(2))
        off = ~np.eye(6, dtype=bool)
        np.testing.assert_allclose(net.bandwidth[off], net.bandwidth.T[off])
        np.testing.assert_allclose(net.delay, net.delay.T)

    def test_delay_range(self):
        p = DeviceNetworkParams(num_devices=8, mean_delay=2.0)
        net = generate_device_network(p, np.random.default_rng(3))
        off = ~np.eye(8, dtype=bool)
        assert (net.delay[off] >= 0).all() and (net.delay[off] <= 4.0).all()

    def test_multiple_networks_disjoint_uids(self):
        nets = generate_device_networks(DeviceNetworkParams(num_devices=4), 3, np.random.default_rng(4))
        uids = [d.uid for n in nets for d in n.devices]
        assert len(set(uids)) == 12

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DeviceNetworkParams(num_devices=0)
        with pytest.raises(ValueError):
            DeviceNetworkParams(het_speed=1.0)


class TestChurn:
    def test_size_bounds_respected(self):
        p = DeviceNetworkParams(num_devices=20)
        net = generate_device_network(p, np.random.default_rng(5))
        cfg = ChurnConfig(min_devices=16, max_devices=20, num_changes=30)
        for event in network_churn(net, cfg, np.random.default_rng(6)):
            assert 16 <= event.network.num_devices <= 20

    def test_replacements_have_lower_capacity(self):
        p = DeviceNetworkParams(num_devices=20, het_speed=0.0, mean_speed=10.0)
        net = generate_device_network(p, np.random.default_rng(7))
        cfg = ChurnConfig(min_devices=16, max_devices=20, capacity_decay=0.5, num_changes=20)
        added_speeds = [
            ev.network.devices[ev.network.index_of(ev.uid)].speed
            for ev in network_churn(net, cfg, np.random.default_rng(8))
            if ev.kind == "add"
        ]
        assert added_speeds and all(s < 10.0 for s in added_speeds)

    def test_hardware_types_never_orphaned(self):
        p = DeviceNetworkParams(num_devices=20, num_hardware_types=3, support_prob=0.3)
        net = generate_device_network(p, np.random.default_rng(9))
        types = set().union(*(d.supports for d in net.devices))
        cfg = ChurnConfig(num_changes=25)
        for ev in network_churn(net, cfg, np.random.default_rng(10)):
            for t in types:
                assert ev.network.feasible_devices(t), f"type {t} orphaned"

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ChurnConfig(min_devices=5, max_devices=4)
        with pytest.raises(ValueError):
            ChurnConfig(capacity_decay=0.0)


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(min_value=2, max_value=25),
    types=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_generated_networks_always_valid(m, types, seed):
    """Property: generator output always passes DeviceNetwork validation
    and covers every hardware type."""
    p = DeviceNetworkParams(num_devices=m, num_hardware_types=types)
    net = generate_device_network(p, np.random.default_rng(seed))
    assert net.num_devices == m
    for t in range(types):
        assert net.feasible_devices(t)
