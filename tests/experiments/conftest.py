"""Micro scale preset: the smallest configuration that exercises every
experiment code path, for fast unit testing of the harness itself."""

import dataclasses

import pytest

from repro.experiments import QUICK


@pytest.fixture(scope="session")
def micro_scale():
    return dataclasses.replace(
        QUICK,
        name="micro",
        num_tasks=5,
        num_devices=3,
        train_graphs=2,
        test_cases=2,
        episodes=2,
        num_networks=2,
        dl_designs=1,
        dl_variants=1,
        dl_group_target=8,
        dl_devices=3,
        dl_episodes=2,
        dl_test_cases=1,
        adapt_devices=6,
        adapt_min_devices=5,
        adapt_changes=2,
        adapt_graphs=2,
        case_vehicles=150,
        case_duration_s=50.0,
        case_cav_fraction=0.4,
        case_train=2,
        case_test=1,
        case_episodes=1,
        convergence_episodes=4,
        convergence_eval_every=2,
        convergence_eval_cases=1,
        pairwise_cases=3,
        timing_graph_sizes=(5,),
        timing_repeats=1,
    )
