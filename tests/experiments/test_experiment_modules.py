"""Micro-scale smoke tests: every experiment module produces a valid report.

These run the identical code paths the benchmarks execute, at the
smallest possible scale, so harness regressions surface in the unit
suite rather than the (slow) benchmark suite.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation,
    fig4,
    fig5,
    fig6,
    fig7,
    fig9,
    fig11,
    fig14,
    fig15,
    fig16,
    table1,
    table6,
    table7,
)

pytestmark = pytest.mark.slow


class TestCheapModules:
    def test_table1(self, micro_scale):
        report = table1.run(micro_scale)
        assert report.experiment_id == "table1"
        assert report.data["fit_rms"] < 0.3
        assert "Table 2" in report.text

    def test_table7(self, micro_scale):
        report = table7.run(micro_scale)
        assert set(report.data["table7"]) == set(table7.VARIANTS) | {"placeto"}
        for t in report.data["table7"].values():
            assert t["infer"] > 0 and t["train"] > 0

    def test_fig16(self, micro_scale):
        report = fig16.run(micro_scale)
        assert set(report.data["overall"]) == {"giph", "random", "heft"}

    def test_fig15(self, micro_scale):
        report = fig15.run(micro_scale)
        assert set(report.data["curves"]) == {"giph", "giph-3", "giph-5", "giph-ne-pol"}
        for curve in report.data["curves"].values():
            assert len(curve) == 2  # 4 episodes / eval every 2

    def test_ablation(self, micro_scale):
        report = ablation.run(micro_scale)
        assert len(report.data["mean_final"]) == 3
        assert all(v >= 0.99 for v in report.data["mean_final"].values())


class TestSyntheticModules:
    def test_fig5(self, micro_scale):
        report = fig5.run(micro_scale)
        assert report.data["depths"]
        assert "heft" in report.data["overall"]

    def test_fig6(self, micro_scale):
        report = fig6.run(micro_scale)
        series = report.data["slr_by_change"]
        assert len(series["giph"]) == micro_scale.adapt_changes
        assert set(series) == {"giph", "giph-task-eft", "placeto", "random", "rnn-placer", "heft"}

    def test_fig7(self, micro_scale):
        report = fig7.run(micro_scale)
        for curve in report.data["curves"].values():
            assert (np.diff(curve) <= 1e-9).all()

    def test_table6(self, micro_scale):
        report = table6.run(micro_scale)
        n_methods = len(table6.METHODS)
        assert len(report.data["matrix"]) == n_methods * (n_methods - 1)

    def test_fig14_single_setting(self, micro_scale):
        import dataclasses

        # Full fig14 runs 3 settings; the convergence_curve building block
        # is exercised directly for speed.
        from repro.experiments.datasets import single_network_dataset

        ds = single_network_dataset(micro_scale, np.random.default_rng(0))
        curve = fig14.convergence_curve("giph-ne-pol", ds, micro_scale, np.random.default_rng(1))
        assert len(curve) == 2


class TestCaseStudyModules:
    def test_fig9(self, micro_scale):
        report = fig9.run(micro_scale)
        assert report.data["num_test"] >= 1
        assert all(v >= 0.99 for v in report.data["final_mean"].values())

    def test_fig11(self, micro_scale):
        report = fig11.run(micro_scale)
        assert report.data["energy"]["giph"] <= report.data["energy"]["random"] + 1e-9
        assert all(v >= 0 for v in report.data["relocation_cost_by_frequency"].values())


class TestFig4:
    def test_fig4_micro(self, micro_scale):
        report = fig4.run(micro_scale)
        assert len(report.data) == 4
        for payload in report.data.values():
            assert set(payload["curves"]) >= {"giph", "random", "placeto"}
