"""Unit tests for the experiment harness: config, datasets, runner, reporting."""

import numpy as np
import pytest

from repro.experiments import (
    PAPER,
    QUICK,
    HeftPolicy,
    active_scale,
    average_curves,
    evaluate_policies,
    multi_network_dataset,
    single_network_dataset,
    train_giph,
)
from repro.experiments.reporting import banner, format_series, format_table
from repro.baselines import RandomPlacementPolicy
from repro.sim import MakespanObjective, TotalCostObjective


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConfig:
    def test_presets_differ(self):
        assert PAPER.episodes > QUICK.episodes
        assert PAPER.train_graphs > QUICK.train_graphs

    def test_active_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert active_scale() is PAPER
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert active_scale() is QUICK
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            active_scale()

    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert active_scale() is QUICK


class TestDatasets:
    def test_single_network_shares_network(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng())
        networks = {id(p.network) for p in ds.train + ds.test}
        assert len(networks) == 1
        assert len(ds.train) == micro_scale.train_graphs
        assert len(ds.test) == micro_scale.test_cases

    def test_multi_network_uses_several(self, micro_scale):
        ds = multi_network_dataset(micro_scale, rng())
        names = {p.network.name for p in ds.train + ds.test}
        assert len(names) >= 2

    def test_multi_network_varied_sizes(self, micro_scale):
        import dataclasses

        scale = dataclasses.replace(micro_scale, num_devices=6, num_networks=4, train_graphs=6)
        ds = multi_network_dataset(scale, rng(3), vary_sizes=True)
        sizes = {p.network.num_devices for p in ds.train + ds.test}
        assert len(sizes) >= 2

    def test_problems_are_valid(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng(1))
        for p in ds.train + ds.test:
            assert p.num_actions > 0
            for feas in p.feasible_sets:
                assert feas


class TestRunner:
    def test_average_curves_pads_with_final(self):
        avg = average_curves([np.array([4.0, 2.0]), np.array([6.0, 4.0, 2.0])])
        np.testing.assert_allclose(avg, [5.0, 3.0, 2.0])

    def test_average_curves_empty(self):
        with pytest.raises(ValueError):
            average_curves([])

    def test_evaluate_policies_shapes(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng(2))
        result = evaluate_policies(
            {"random": RandomPlacementPolicy(), "heft": HeftPolicy()},
            ds.test,
            rng(3),
        )
        assert set(result.curves) == {"random", "heft"}
        for name in result.curves:
            assert len(result.finals[name]) == len(ds.test)
            assert (np.diff(result.curves[name]) <= 1e-9).all()
            assert result.mean_final(name) >= 0.99  # SLR lower bound

    def test_evaluate_with_noise(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng(4))
        result = evaluate_policies(
            {"random": RandomPlacementPolicy()}, ds.test, rng(5), noise=0.2
        )
        assert np.isfinite(list(result.finals["random"])).all()

    def test_evaluate_custom_objective_unnormalized(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng(6))
        result = evaluate_policies(
            {"random": RandomPlacementPolicy()},
            ds.test,
            rng(7),
            normalize_slr=False,
            objective=TotalCostObjective(),
        )
        assert all(v > 0 for v in result.finals["random"])

    def test_heft_policy_constant_curve(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng(8))
        problem = ds.test[0]
        trace = HeftPolicy().search(
            problem, MakespanObjective(), [f[0] for f in problem.feasible_sets], 4, rng(9)
        )
        assert len(set(trace.values)) == 1

    def test_train_giph_smoke(self, micro_scale):
        ds = single_network_dataset(micro_scale, rng(10))
        agent = train_giph(ds.train, rng(11), episodes=2, embedding="giph-ne-pol")
        assert agent.policy is not None


class TestReporting:
    def test_banner(self):
        b = banner("Hello")
        assert "Hello" in b and "=" in b

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.500" in text and "2.250" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_series_subsampling(self):
        text = format_series({"a": list(range(10))}, every=4)
        rows = [l for l in text.splitlines() if l and l[0].isdigit()]
        # rows at x = 0, 4, 8 plus the forced final point x = 9
        assert len(rows) == 4
        assert rows[-1].startswith("9")

    def test_format_series_unequal_lengths(self):
        text = format_series({"a": [1.0, 2.0], "b": [5.0]})
        assert "5.000" in text
