"""ASCII chart renderer tests."""

import numpy as np
import pytest

from repro.experiments.reporting import ascii_chart, format_series


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart({"a": [3.0, 2.0, 1.0]}, width=20, height=6)
        lines = chart.splitlines()
        assert len(lines) == 6 + 2  # rows + x-axis + legend
        assert "a" in lines[-1]  # legend
        assert "└" in lines[-2]

    def test_y_axis_labels_reflect_range(self):
        chart = ascii_chart({"a": [10.0, 20.0]}, width=20, height=6)
        assert "20.000" in chart.splitlines()[0]
        assert "10.000" in chart.splitlines()[-3]

    def test_markers_differ_between_series(self):
        chart = ascii_chart({"a": [1.0, 1.0], "b": [2.0, 2.0]}, width=20, height=6)
        assert "*" in chart and "o" in chart

    def test_decreasing_series_slopes_down(self):
        chart = ascii_chart({"a": [3.0, 2.0, 1.0]}, width=30, height=9)
        lines = chart.splitlines()[:9]
        first_row_cols = [l.find("*") for l in lines if "*" in l]
        # Marker column increases as we go down the grid (later = lower value).
        assert first_row_cols == sorted(first_row_cols)

    def test_constant_series_handled(self):
        chart = ascii_chart({"a": [5.0, 5.0, 5.0]}, width=20, height=6)
        assert "*" in chart

    def test_non_finite_values_skipped(self):
        chart = ascii_chart({"a": [1.0, float("nan"), 3.0]}, width=20, height=6)
        assert "*" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({}, width=20, height=6)
        with pytest.raises(ValueError):
            ascii_chart({"a": [1.0]}, width=5, height=6)
        with pytest.raises(ValueError):
            ascii_chart({"a": [float("nan")]}, width=20, height=6)


class TestFormatSeriesChart:
    def test_chart_appended(self):
        text = format_series({"a": [3.0, 2.0, 1.0]})
        assert "└" in text and "> step" in text

    def test_chart_suppressed(self):
        text = format_series({"a": [3.0, 2.0, 1.0]}, chart=False)
        assert "└" not in text

    def test_single_point_no_chart(self):
        text = format_series({"a": [3.0]})
        assert "└" not in text
