"""ENAS DL-graph generator and operator-grouping tests (paper §5.2, B.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CellDesign,
    TaskGraph,
    generate_enas_dataset,
    group_operators,
    sample_cell_design,
    unroll_cell,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestCellDesign:
    def test_sampled_design_valid(self):
        d = sample_cell_design(rng(), num_nodes=10)
        assert d.num_nodes == 10
        assert d.predecessors[0] == -1

    def test_node0_must_read_input(self):
        with pytest.raises(ValueError):
            CellDesign((0,), ("tanh",))

    def test_predecessor_must_be_earlier(self):
        with pytest.raises(ValueError):
            CellDesign((-1, 1), ("tanh", "relu"))

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            CellDesign((-1,), ("softplus",))

    def test_loose_ends(self):
        # 0 -> 1, 0 -> 2; loose ends are 1 and 2.
        d = CellDesign((-1, 0, 0), ("tanh", "relu", "identity"))
        assert d.loose_ends() == (1, 2)


class TestUnroll:
    def test_operator_count_in_paper_range(self):
        # Paper: 200-300 operators per graph with T in [20, 30].
        d = sample_cell_design(rng(), num_nodes=10)
        g = unroll_cell(d, steps=25, batch_size=100)
        assert 200 <= g.num_tasks <= 350

    def test_single_entry_single_exit(self):
        d = sample_cell_design(rng(1))
        g = unroll_cell(d, steps=5, batch_size=32)
        assert len(g.entries) == 1 and len(g.exits) == 1

    def test_batch_size_scales_cost(self):
        d = sample_cell_design(rng(2))
        small = unroll_cell(d, steps=5, batch_size=32)
        large = unroll_cell(d, steps=5, batch_size=128)
        assert sum(large.compute) == pytest.approx(4 * sum(small.compute))

    def test_steps_scale_size(self):
        d = sample_cell_design(rng(3), num_nodes=8)
        assert unroll_cell(d, 10, 64).num_tasks > unroll_cell(d, 5, 64).num_tasks

    def test_invalid_args(self):
        d = sample_cell_design(rng(4))
        with pytest.raises(ValueError):
            unroll_cell(d, steps=0, batch_size=32)
        with pytest.raises(ValueError):
            unroll_cell(d, steps=5, batch_size=0)

    def test_dataset_shape(self):
        graphs = generate_enas_dataset(rng(), num_designs=2, variants_per_design=3)
        assert len(graphs) == 6
        assert all(len(g.entries) == 1 for g in graphs)


class TestGrouping:
    def test_reduces_to_target(self):
        d = sample_cell_design(rng(5), num_nodes=10)
        g = unroll_cell(d, steps=20, batch_size=100)
        grouped = group_operators(g, target_size=40)
        assert grouped.graph.num_tasks <= 40

    def test_groups_partition_operators(self):
        d = sample_cell_design(rng(6), num_nodes=8)
        g = unroll_cell(d, steps=10, batch_size=64)
        grouped = group_operators(g, target_size=30)
        all_ops = sorted(op for group in grouped.groups for op in group)
        assert all_ops == list(range(g.num_tasks))

    def test_compute_conserved(self):
        d = sample_cell_design(rng(7), num_nodes=8)
        g = unroll_cell(d, steps=10, batch_size=64)
        grouped = group_operators(g, target_size=25)
        assert sum(grouped.graph.compute) == pytest.approx(sum(g.compute))

    def test_result_is_acyclic_dag(self):
        d = sample_cell_design(rng(8), num_nodes=9)
        g = unroll_cell(d, steps=12, batch_size=80)
        grouped = group_operators(g, target_size=40)  # constructor rejects cycles
        assert grouped.graph.num_tasks == len(grouped.groups)

    def test_group_of_lookup(self):
        d = sample_cell_design(rng(9), num_nodes=8)
        g = unroll_cell(d, steps=6, batch_size=32)
        grouped = group_operators(g, target_size=20)
        assert grouped.group_of(0) in range(len(grouped.groups))
        with pytest.raises(KeyError):
            grouped.group_of(10_000)

    def test_incompatible_requirements_not_merged(self):
        # Chain 0 -> 1 -> 2 with conflicting requirements on 0/1: merge of
        # 1 into 0 is blocked, 2 (generic) can merge anywhere.
        g = TaskGraph(
            (1.0, 1.0, 1.0),
            {(0, 1): 1.0, (1, 2): 1.0},
            requirements=(1, 2, 0),
        )
        grouped = group_operators(g, target_size=1)
        assert grouped.graph.num_tasks == 2  # 1 and 2 merged; 0 kept apart

    def test_merged_requirement_inherited(self):
        g = TaskGraph((1.0, 1.0), {(0, 1): 1.0}, requirements=(0, 2))
        grouped = group_operators(g, target_size=1)
        assert grouped.graph.num_tasks == 1
        assert grouped.graph.requirements == (2,)

    def test_bad_target(self):
        with pytest.raises(ValueError):
            group_operators(TaskGraph((1.0,), {}), target_size=0)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    steps=st.integers(min_value=2, max_value=15),
    target=st.integers(min_value=5, max_value=60),
)
def test_grouping_preserves_dag_and_compute(seed, steps, target):
    """Property: grouping any unrolled cell yields a valid DAG partition
    conserving total compute."""
    d = sample_cell_design(np.random.default_rng(seed))
    g = unroll_cell(d, steps=steps, batch_size=64)
    grouped = group_operators(g, target_size=target)
    assert sum(grouped.graph.compute) == pytest.approx(sum(g.compute))
    sizes = sorted(op for group in grouped.groups for op in group)
    assert sizes == list(range(g.num_tasks))
    # grouped graph constructor validates acyclicity; depth must not grow
    assert grouped.graph.depth <= g.depth
