"""Random task-graph generator tests (paper Appendix B.2), incl. properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import TaskGraphParams, generate_task_graph, generate_task_graphs


def rng(seed=0):
    return np.random.default_rng(seed)


class TestParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 0},
            {"shape": 0.0},
            {"connect_prob": 1.5},
            {"het_compute": 2.0},
            {"num_hardware_types": 0},
            {"constraint_prob": -0.1},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TaskGraphParams(**kwargs)


class TestGenerator:
    def test_task_count_exact(self):
        g = generate_task_graph(TaskGraphParams(num_tasks=25), rng())
        assert g.num_tasks == 25

    def test_single_entry_single_exit(self):
        for seed in range(10):
            g = generate_task_graph(TaskGraphParams(num_tasks=20), rng(seed))
            assert len(g.entries) == 1, f"seed {seed}"
            assert len(g.exits) == 1, f"seed {seed}"

    def test_compute_within_heterogeneity_band(self):
        p = TaskGraphParams(num_tasks=40, mean_compute=100.0, het_compute=0.3)
        g = generate_task_graph(p, rng())
        assert all(70.0 <= c <= 130.0 for c in g.compute)

    def test_data_within_heterogeneity_band(self):
        p = TaskGraphParams(num_tasks=40, mean_data=50.0, het_data=0.2)
        g = generate_task_graph(p, rng())
        assert all(40.0 <= b <= 60.0 for b in g.edges.values())

    def test_shape_parameter_controls_depth(self):
        # Larger alpha -> wider and shallower graphs (paper Fig. 12).
        deep = [generate_task_graph(TaskGraphParams(num_tasks=50, shape=0.5), rng(s)).depth for s in range(20)]
        wide = [generate_task_graph(TaskGraphParams(num_tasks=50, shape=2.0), rng(s)).depth for s in range(20)]
        assert np.mean(deep) > np.mean(wide)

    def test_connect_prob_controls_density(self):
        sparse = [generate_task_graph(TaskGraphParams(num_tasks=30, connect_prob=0.05), rng(s)).num_edges for s in range(10)]
        dense = [generate_task_graph(TaskGraphParams(num_tasks=30, connect_prob=0.8), rng(s)).num_edges for s in range(10)]
        assert np.mean(dense) > np.mean(sparse)

    def test_constraints_assigned(self):
        p = TaskGraphParams(num_tasks=60, constraint_prob=1.0, num_hardware_types=4)
        g = generate_task_graph(p, rng())
        assert all(1 <= r <= 3 for r in g.requirements)

    def test_no_constraints_when_prob_zero(self):
        p = TaskGraphParams(num_tasks=30, constraint_prob=0.0)
        g = generate_task_graph(p, rng())
        assert set(g.requirements) == {0}

    def test_reproducible_given_seed(self):
        p = TaskGraphParams(num_tasks=20)
        g1 = generate_task_graph(p, rng(7))
        g2 = generate_task_graph(p, rng(7))
        assert g1.compute == g2.compute and g1.edges == g2.edges

    def test_batch_generation(self):
        graphs = generate_task_graphs(TaskGraphParams(num_tasks=10), 5, rng())
        assert len(graphs) == 5
        assert len({g.name for g in graphs}) == 5

    def test_tiny_graphs(self):
        for m in (1, 2, 3):
            g = generate_task_graph(TaskGraphParams(num_tasks=m), rng())
            assert g.num_tasks == m


@settings(max_examples=30, deadline=None)
@given(
    num_tasks=st.integers(min_value=1, max_value=60),
    shape=st.floats(min_value=0.3, max_value=3.0),
    connect_prob=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_generator_always_produces_valid_connected_dags(num_tasks, shape, connect_prob, seed):
    """Property: any parameterization yields a valid DAG with exactly one
    entry and exit, all tasks on a path from entry to exit."""
    p = TaskGraphParams(num_tasks=num_tasks, shape=shape, connect_prob=connect_prob)
    g = generate_task_graph(p, np.random.default_rng(seed))
    assert g.num_tasks == num_tasks
    assert len(g.entries) == 1 and len(g.exits) == 1
    # Reachability: every task reachable from the entry (forward BFS) and
    # co-reachable from the exit (backward BFS).
    fwd = {g.entries[0]}
    frontier = [g.entries[0]]
    while frontier:
        u = frontier.pop()
        for v in g.children[u]:
            if v not in fwd:
                fwd.add(v)
                frontier.append(v)
    bwd = {g.exits[0]}
    frontier = [g.exits[0]]
    while frontier:
        v = frontier.pop()
        for u in g.parents[v]:
            if u not in bwd:
                bwd.add(u)
                frontier.append(u)
    assert fwd == set(range(num_tasks))
    assert bwd == set(range(num_tasks))
