"""TaskGraph structure tests."""

import numpy as np
import pytest

from repro.graphs import TaskGraph


def diamond() -> TaskGraph:
    #   0 -> 1 -> 3, 0 -> 2 -> 3
    return TaskGraph(
        compute=(1.0, 2.0, 3.0, 4.0),
        edges={(0, 1): 10.0, (0, 2): 20.0, (1, 3): 30.0, (2, 3): 40.0},
    )


class TestConstruction:
    def test_basic_properties(self):
        g = diamond()
        assert g.num_tasks == 4 and g.num_edges == 4
        assert g.entries == (0,) and g.exits == (3,)
        assert g.parents[3] == (1, 2) and g.children[0] == (1, 2)

    def test_depth_and_levels(self):
        g = diamond()
        assert g.depth == 3
        assert g.levels() == [0, 1, 1, 2]

    def test_topo_order_respects_edges(self):
        g = diamond()
        pos = {v: i for i, v in enumerate(g.topo_order)}
        for u, v in g.edges:
            assert pos[u] < pos[v]

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            TaskGraph((1.0, 1.0), {(0, 1): 1.0, (1, 0): 1.0})

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            TaskGraph((1.0,), {(0, 0): 1.0})

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            TaskGraph((1.0,), {(0, 5): 1.0})

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph((-1.0,), {})

    def test_negative_data_rejected(self):
        with pytest.raises(ValueError, match="negative data"):
            TaskGraph((1.0, 1.0), {(0, 1): -5.0})

    def test_requirement_length_mismatch(self):
        with pytest.raises(ValueError, match="requirements"):
            TaskGraph((1.0, 1.0), {}, requirements=(0,))

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph((), {})

    def test_default_requirements_are_generic(self):
        assert diamond().requirements == (0, 0, 0, 0)


class TestQueries:
    def test_degree(self):
        g = diamond()
        assert g.degree(0) == 2 and g.degree(3) == 2 and g.degree(1) == 2

    def test_data_out(self):
        assert diamond().data_out(0) == 30.0
        assert diamond().data_out(3) == 0.0

    def test_to_networkx_roundtrip(self):
        nx_g = diamond().to_networkx()
        assert nx_g.number_of_nodes() == 4
        assert nx_g[0][1]["data"] == 10.0
        assert nx_g.nodes[2]["compute"] == 3.0

    def test_relabeled_preserves_structure(self):
        g = diamond().relabeled([3, 2, 1, 0])
        assert g.compute[3] == 1.0  # old task 0
        assert (3, 2) in g.edges and g.edges[(3, 2)] == 10.0
        assert g.depth == 3

    def test_relabeled_bad_mapping(self):
        with pytest.raises(ValueError):
            diamond().relabeled([0, 0, 1, 2])

    def test_single_task_graph(self):
        g = TaskGraph((5.0,), {})
        assert g.entries == (0,) and g.exits == (0,) and g.depth == 1
