"""Cross-module integration tests.

These exercise the seams the unit suites cannot: policies trained in one
domain applied in another, checkpoints crossing process boundaries,
placements surviving cluster churn, and the agreement between HEFT's
internal schedule estimate and the runtime simulator.
"""

import numpy as np
import pytest

from repro.baselines import heft_placement
from repro.casestudy import TraceConfig, TrafficConfig, extract_trace
from repro.core import (
    GiPHAgent,
    PlacementProblem,
    ReinforceConfig,
    ReinforceTrainer,
    random_placement,
    run_search,
)
from repro.core.serialization import load_agent, save_agent
from repro.devices import ChurnConfig, DeviceNetworkParams, generate_device_network, network_churn
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.sim import MakespanObjective, cp_min_lower_bound, simulate


def synthetic_problem(rng, num_tasks=8, num_devices=4):
    graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks), rng)
    network = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
    return PlacementProblem(graph, network)


class TestCrossDomainGeneralization:
    def test_synthetic_trained_agent_runs_on_case_study(self):
        """A policy trained on random synthetic problems must *execute*
        on a sensor-fusion scenario (different graph family, device
        count, constraint structure) without shape errors — the
        structural guarantee behind the paper's generalization claims."""
        rng = np.random.default_rng(0)
        agent = GiPHAgent(rng)
        trainer = ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episode_length=4))
        trainer.train([synthetic_problem(rng) for _ in range(2)], rng, episodes=2)

        scenarios = extract_trace(
            TraceConfig(
                traffic=TrafficConfig(num_vehicles=250, duration_s=80.0, cav_fraction=0.4),
                max_cases=1,
            ),
            rng,
        )
        problem = scenarios[0].problem
        trace = run_search(
            agent, problem, MakespanObjective(), random_placement(problem, rng),
            episode_length=6,
        )
        problem.validate_placement(trace.best_placement)
        assert trace.best_value <= trace.values[0] + 1e-9

    def test_one_agent_many_device_counts(self):
        """The same agent evaluates on 2-, 5- and 9-device clusters."""
        rng = np.random.default_rng(1)
        agent = GiPHAgent(rng)
        for m in (2, 5, 9):
            problem = synthetic_problem(rng, num_tasks=6, num_devices=m)
            trace = run_search(
                agent, problem, MakespanObjective(), random_placement(problem, rng),
                episode_length=4,
            )
            problem.validate_placement(trace.best_placement)


class TestCheckpointWorkflow:
    def test_train_save_load_evaluate(self, tmp_path):
        rng = np.random.default_rng(2)
        problem = synthetic_problem(rng)
        agent = GiPHAgent(rng)
        ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episode_length=4)).train(
            [problem], rng, episodes=2
        )
        path = save_agent(agent, tmp_path / "ckpt.npz")
        loaded = load_agent(path, np.random.default_rng(3))

        initial = random_placement(problem, rng)
        t1 = run_search(agent, problem, MakespanObjective(), initial, greedy=True)
        t2 = run_search(loaded, problem, MakespanObjective(), initial, greedy=True)
        assert t1.best_placement == t2.best_placement


class TestChurnWorkflow:
    def test_replacement_after_churn(self):
        """After devices leave, a stale placement may reference gone
        devices; re-placing on the new network must restore validity."""
        rng = np.random.default_rng(4)
        network = generate_device_network(
            DeviceNetworkParams(num_devices=6, support_prob=0.8), rng
        )
        graph = generate_task_graph(TaskGraphParams(num_tasks=8), rng)
        agent = GiPHAgent(rng)
        for event in network_churn(
            network, ChurnConfig(min_devices=4, max_devices=6, num_changes=4), rng
        ):
            problem = PlacementProblem(graph, event.network)
            trace = run_search(
                agent, problem, MakespanObjective(), random_placement(problem, rng),
                episode_length=4,
            )
            problem.validate_placement(trace.best_placement)
            # The placement must be executable on the changed cluster.
            res = simulate(graph, event.network, trace.best_placement, problem.cost_model)
            assert res.makespan > 0


class TestHeftSimulatorAgreement:
    def test_internal_estimate_close_to_simulation(self):
        """HEFT's insertion-based estimate and the FIFO simulator use
        different queue disciplines but must agree within a small factor
        on random instances."""
        for seed in range(8):
            rng = np.random.default_rng(seed)
            problem = synthetic_problem(rng, num_tasks=10, num_devices=4)
            schedule = heft_placement(problem)
            sim = simulate(
                problem.graph, problem.network, schedule.placement, problem.cost_model
            )
            assert sim.makespan >= 0.5 * schedule.makespan
            assert sim.makespan <= 3.0 * schedule.makespan + 1e-9


class TestDeterminism:
    def test_training_deterministic_given_seed(self):
        def run():
            rng = np.random.default_rng(5)
            problem = synthetic_problem(rng)
            agent = GiPHAgent(rng)
            trainer = ReinforceTrainer(
                agent, MakespanObjective(), ReinforceConfig(episode_length=4)
            )
            trainer.train([problem], rng, episodes=2)
            return agent.state_dict()

        s1, s2 = run(), run()
        for key in s1:
            np.testing.assert_allclose(s1[key], s2[key], err_msg=key)

    def test_slr_lower_bound_holds_across_policies(self):
        """SLR >= 1 for any feasible placement of any instance: the
        CP_MIN bound is a true lower bound of simulated makespan."""
        for seed in range(10):
            rng = np.random.default_rng(seed)
            problem = synthetic_problem(rng, num_tasks=9, num_devices=4)
            bound = cp_min_lower_bound(problem.cost_model)
            for _ in range(3):
                placement = random_placement(problem, rng)
                res = simulate(problem.graph, problem.network, placement, problem.cost_model)
                assert res.makespan >= bound - 1e-9
