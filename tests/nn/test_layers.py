"""Tests for Linear/MLP/Sequential, Module bookkeeping, and optimizers."""

import numpy as np
import pytest

from repro.nn import MLP, Adam, Linear, Module, Parameter, SGD, Sequential, Tensor


def rng():
    return np.random.default_rng(42)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng())
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, rng(), bias=False)
        assert layer.bias is None
        assert sum(1 for _ in layer.parameters()) == 1

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3, rng())

    def test_gradient_flow(self):
        layer = Linear(2, 1, rng())
        out = layer(Tensor([[1.0, 2.0]]))
        out.sum().backward()
        assert layer.weight.grad is not None
        np.testing.assert_allclose(layer.weight.grad.ravel(), [1.0, 2.0])


class TestMLP:
    def test_paper_policy_shape(self):
        # The paper's score function: 10 -> 16 -> 1 (Table 5).
        mlp = MLP([10, 16, 1], rng())
        out = mlp(Tensor(np.ones((7, 10))))
        assert out.shape == (7, 1)

    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4], rng())

    def test_learns_xor_direction(self):
        # Tiny end-to-end sanity check: fit y = x0 - x1 with MSE.
        r = np.random.default_rng(0)
        mlp = MLP([2, 8, 1], r)
        opt = Adam(mlp.parameters(), lr=0.02)
        x = r.normal(size=(64, 2))
        y = (x[:, 0] - x[:, 1]).reshape(-1, 1)
        first = None
        for _ in range(150):
            opt.zero_grad()
            pred = mlp(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1 * first


class TestModule:
    def test_named_parameters_nested(self):
        class Net(Module):
            def __init__(self):
                self.a = Linear(2, 2, rng())
                self.inner = Sequential(Linear(2, 2, rng()))

        names = dict(Net().named_parameters())
        assert "a.weight" in names and "inner.modules.0.weight" in names

    def test_state_dict_roundtrip(self):
        net1, net2 = MLP([3, 4, 2], rng()), MLP([3, 4, 2], np.random.default_rng(7))
        net2.load_state_dict(net1.state_dict())
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(net1(x).data, net2(x).data)

    def test_state_dict_mismatch_raises(self):
        net = MLP([3, 4, 2], rng())
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_state_dict_shape_mismatch(self):
        net = MLP([3, 4, 2], rng())
        state = net.state_dict()
        key = next(iter(state))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad(self):
        net = MLP([2, 2], rng())
        net(Tensor(np.ones((1, 2)))).sum().backward()
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_num_parameters(self):
        net = Linear(3, 2, rng())
        assert net.num_parameters() == 3 * 2 + 2


class TestOptim:
    def _quadratic_descends(self, make_opt):
        p = Parameter(np.array([5.0]))
        opt = make_opt([p])
        for _ in range(200):
            opt.zero_grad()
            (p * p).backward()
            opt.step()
        return abs(float(p.data[0]))

    def test_sgd_converges(self):
        assert self._quadratic_descends(lambda ps: SGD(ps, lr=0.1)) < 1e-3

    def test_sgd_momentum_converges(self):
        assert self._quadratic_descends(lambda ps: SGD(ps, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_converges(self):
        assert self._quadratic_descends(lambda ps: Adam(ps, lr=0.1)) < 1e-2

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.01)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        opt = SGD([p], lr=0.1)
        pre = opt.clip_grad_norm(1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_noop_below_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        SGD([p], lr=0.1).clip_grad_norm(10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1])
