"""Fused Adam: the flat-buffer multi-parameter step must be a pure
speed change — bit-identical trajectories against the per-tensor path,
including steps where some parameters have no gradient."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import Adam

SHAPES = [(3, 4), (7,), (2, 5, 2), (1,)]


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [Parameter(rng.standard_normal(shape)) for shape in SHAPES]


def drive(params, optimizer, steps=40, drop_every=None):
    rng = np.random.default_rng(1)
    for t in range(steps):
        for p in params:
            p.grad = rng.standard_normal(p.data.shape)
        if drop_every and t % drop_every == 2:
            params[1].grad = None
        optimizer.step()


class TestFusedAdam:
    @pytest.mark.parametrize("drop_every", [None, 5])
    def test_bit_identical_to_per_tensor(self, drop_every):
        fused_params = make_params()
        plain_params = make_params()
        fused = Adam(fused_params, lr=0.01, fused=True)
        plain = Adam(plain_params, lr=0.01, fused=False)
        drive(fused_params, fused, drop_every=drop_every)
        drive(plain_params, plain, drop_every=drop_every)
        for p, q in zip(fused_params, plain_params):
            assert np.array_equal(p.data, q.data)
        for m, n in zip(fused._m, plain._m):
            assert np.array_equal(m, n)
        for v, w in zip(fused._v, plain._v):
            assert np.array_equal(v, w)

    def test_moment_views_alias_flat_buffers(self):
        optimizer = Adam(make_params(), lr=0.01)
        for view in optimizer._m:
            assert view.base is optimizer._flat_m
        for view in optimizer._v:
            assert view.base is optimizer._flat_v
        assert optimizer._flat_m.size == sum(
            np.prod(shape, dtype=int) for shape in SHAPES
        )

    def test_skipped_grad_freezes_param_and_moments(self):
        params = make_params()
        optimizer = Adam(params, lr=0.01)
        for p in params:
            p.grad = np.ones_like(p.data)
        optimizer.step()
        frozen_data = params[0].data.copy()
        frozen_m = optimizer._m[0].copy()
        frozen_v = optimizer._v[0].copy()
        params[0].grad = None
        for p in params[1:]:
            p.grad = np.ones_like(p.data)
        optimizer.step()
        assert np.array_equal(params[0].data, frozen_data)
        assert np.array_equal(optimizer._m[0], frozen_m)
        assert np.array_equal(optimizer._v[0], frozen_v)
        assert not np.array_equal(
            optimizer._m[1], np.zeros_like(optimizer._m[1])
        )

    def test_fused_descends_quadratic(self):
        rng = np.random.default_rng(3)
        param = Parameter(rng.standard_normal(8))
        optimizer = Adam([param], lr=0.1, fused=True)
        for _ in range(200):
            param.grad = 2.0 * param.data
            optimizer.step()
        assert float(np.abs(param.data).max()) < 1e-2
