"""LSTM / BiLSTM / attention tests."""

import numpy as np

from repro.nn import Adam, BiLSTM, LSTM, LSTMCell, AdditiveAttention, Tensor


def rng():
    return np.random.default_rng(3)


class TestLSTMCell:
    def test_output_shapes(self):
        cell = LSTMCell(4, 6, rng())
        h, c = cell(Tensor(np.ones(4)), cell.initial_state())
        assert h.shape == (6,) and c.shape == (6,)

    def test_batched(self):
        cell = LSTMCell(4, 6, rng())
        h, c = cell(Tensor(np.ones((3, 4))), cell.initial_state(batch=3))
        assert h.shape == (3, 6)

    def test_forget_bias_initialized(self):
        cell = LSTMCell(2, 3, rng())
        np.testing.assert_allclose(cell.bias.data[3:6], 1.0)

    def test_gradients_reach_input_weights(self):
        cell = LSTMCell(2, 3, rng())
        h, _ = cell(Tensor(np.ones(2)), cell.initial_state())
        h.sum().backward()
        assert cell.w_ih.grad is not None and np.abs(cell.w_ih.grad).sum() > 0


class TestLSTM:
    def test_sequence_shapes(self):
        lstm = LSTM(3, 5, rng())
        out, (h, c) = lstm(Tensor(np.ones((7, 3))))
        assert out.shape == (7, 5) and h.shape == (5,)

    def test_state_threads_through_time(self):
        # Outputs must differ across steps for constant input (state evolves).
        lstm = LSTM(2, 4, rng())
        out, _ = lstm(Tensor(np.ones((3, 2))))
        assert not np.allclose(out.data[0], out.data[2])

    def test_can_learn_sign_of_first_element(self):
        r = np.random.default_rng(1)
        lstm = LSTM(1, 8, r)
        from repro.nn import Linear

        head = Linear(8, 1, r)
        params = list(lstm.parameters()) + list(head.parameters())
        opt = Adam(params, lr=0.02)
        losses = []
        for step in range(120):
            x = r.choice([-1.0, 1.0]) * np.ones((4, 1))
            target = 1.0 if x[0, 0] > 0 else 0.0
            opt.zero_grad()
            out, _ = lstm(Tensor(x))
            logit = head(out[-1])
            prob = logit.sigmoid()
            loss = -(
                Tensor([target]) * (prob + 1e-9).log()
                + Tensor([1 - target]) * (1 - prob + 1e-9).log()
            ).sum()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-20:]) < np.mean(losses[:20])


class TestBiLSTM:
    def test_concat_dims(self):
        bi = BiLSTM(3, 5, rng())
        out = bi(Tensor(np.ones((6, 3))))
        assert out.shape == (6, 10)

    def test_backward_direction_sees_future(self):
        # Make the last input special; the backward pass should expose it at t=0.
        bi = BiLSTM(1, 4, rng())
        x1 = np.zeros((5, 1))
        x2 = np.zeros((5, 1))
        x2[-1] = 5.0
        o1, o2 = bi(Tensor(x1)).data, bi(Tensor(x2)).data
        # forward half at t=0 identical, backward half differs
        np.testing.assert_allclose(o1[0, :4], o2[0, :4])
        assert not np.allclose(o1[0, 4:], o2[0, 4:])


class TestAttention:
    def test_context_shape(self):
        attn = AdditiveAttention(4, 6, 5, rng())
        ctx = attn(Tensor(np.ones(4)), Tensor(np.ones((7, 6))))
        assert ctx.shape == (6,)

    def test_attends_to_matching_key(self):
        # Query aligned with one memory row should weight it most after training.
        r = np.random.default_rng(5)
        attn = AdditiveAttention(2, 2, 8, r)
        memory = Tensor(np.array([[1.0, 0.0], [0.0, 1.0]]))
        opt = Adam(attn.parameters(), lr=0.05)
        for _ in range(100):
            opt.zero_grad()
            ctx = attn(Tensor(np.array([1.0, 0.0])), memory)
            loss = ((ctx - Tensor(np.array([1.0, 0.0]))) ** 2).sum()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05
