"""Gradchecks and invariance pins for the segment-op family.

These ops are the substrate of the vectorized GNN hot path: the
frontier-batched message passing in ``repro.core.gnn`` is only
bit-identical to its per-task loop reference because

* ``F.linear`` is batch-invariant (each output row depends on its own
  input row alone, reduced in a fixed sequential order), and
* the scatter/gather/segment ops preserve ``np.add.at``-style
  elementwise accumulation order.

Every new op gets a central-difference gradient check; the linear
kernel additionally gets its row/partition invariance pinned, since the
whole bit-identity guarantee of ``tests/core/test_gnn_vectorized.py``
rests on it.
"""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient against finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    expected = numeric_grad(lambda arr: build(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


SEGMENTS = np.array([0, 2, 1, 0, 2, 2, 1], dtype=np.int64)


class TestLinear:
    @pytest.mark.parametrize("bias", [False, True])
    def test_forward_matches_matmul(self, bias):
        rng = np.random.default_rng(0)
        x, w = rng.normal(size=(6, 4)), rng.normal(size=(4, 3))
        b = rng.normal(size=3) if bias else None
        out = F.linear(Tensor(x), Tensor(w), Tensor(b) if bias else None)
        expected = x @ w + (b if bias else 0.0)
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)

    def test_grad_2d_with_bias(self):
        rng = np.random.default_rng(1)
        w, b = rng.normal(size=(4, 3)), rng.normal(size=3)
        check_grad(
            lambda t: (F.linear(t, Tensor(w), Tensor(b)) ** 2).sum(),
            rng.normal(size=(5, 4)),
        )

    def test_grad_1d_input(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(4, 3))
        check_grad(lambda t: (F.linear(t, Tensor(w)) ** 2).sum(), rng.normal(size=4))

    def test_weight_and_bias_grads(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(5, 4))
        w0, b0 = rng.normal(size=(4, 3)), rng.normal(size=3)
        wt = Tensor(w0.copy(), requires_grad=True)
        bt = Tensor(b0.copy(), requires_grad=True)
        (F.linear(Tensor(x), wt, bt) ** 2).sum().backward()
        nw = numeric_grad(lambda arr: float(((x @ arr + b0) ** 2).sum()), w0.copy())
        nb = numeric_grad(lambda arr: float(((x @ w0 + arr) ** 2).sum()), b0.copy())
        np.testing.assert_allclose(wt.grad, nw, atol=1e-4)
        np.testing.assert_allclose(bt.grad, nb, atol=1e-4)

    def test_row_partition_invariance_bitwise(self):
        """The property the GNN bit-identity guarantee rests on.

        Any row of a batched ``F.linear`` must be byte-identical to
        applying the kernel to that row alone or to any sub-batch
        containing it (``np.matmul`` does NOT satisfy this — its BLAS
        kernel choice depends on the batch shape).
        """
        rng = np.random.default_rng(4)
        for trial in range(20):
            n, k, m = rng.integers(1, 40), rng.integers(1, 30), rng.integers(1, 12)
            x, w = rng.normal(size=(n, k)), rng.normal(size=(k, m))
            b = rng.normal(size=m)
            full = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
            lo, hi = sorted(rng.integers(0, n + 1, size=2))
            part = F.linear(Tensor(x[lo:hi]), Tensor(w), Tensor(b)).data
            assert np.array_equal(full[lo:hi], part)
            i = int(rng.integers(0, n))
            row = F.linear(Tensor(x[i]), Tensor(w), Tensor(b)).data
            assert np.array_equal(full[i], row)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.linear(Tensor(np.zeros((2, 3, 4))), Tensor(np.zeros((4, 2))))
        with pytest.raises(ValueError):
            F.linear(Tensor(np.zeros((2, 3))), Tensor(np.zeros((4, 2))))


class TestSegmentSum:
    def test_forward(self):
        vals = np.arange(14, dtype=np.float64).reshape(7, 2)
        out = F.segment_sum(Tensor(vals), SEGMENTS, 4)
        expected = np.zeros((4, 2))
        for i, s in enumerate(SEGMENTS):
            expected[s] += vals[i]
        np.testing.assert_array_equal(out.data, expected)

    def test_grad(self):
        rng = np.random.default_rng(5)
        check_grad(
            lambda t: (F.segment_sum(t, SEGMENTS, 3) ** 2).sum(),
            rng.normal(size=(7, 2)),
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.zeros((3, 2))), np.array([0, 1]), 2)


class TestSegmentMean:
    def test_empty_segment_is_zero(self):
        out = F.segment_mean(Tensor(np.ones((2, 3))), np.array([0, 2]), 4)
        np.testing.assert_array_equal(out.data[1], np.zeros(3))
        np.testing.assert_array_equal(out.data[3], np.zeros(3))

    def test_grad(self):
        rng = np.random.default_rng(6)
        check_grad(
            lambda t: (F.segment_mean(t, SEGMENTS, 4) ** 2).sum(),
            rng.normal(size=(7, 3)),
        )

    def test_precomputed_counts_bitwise(self):
        """The counts fast path must not change a single bit."""
        rng = np.random.default_rng(7)
        vals = rng.normal(size=(7, 3))
        counts = np.maximum(np.bincount(SEGMENTS, minlength=4), 1).astype(np.float64)
        a = F.segment_mean(Tensor(vals), SEGMENTS, 4)
        b = F.segment_mean(Tensor(vals), SEGMENTS, 4, counts=counts)
        assert np.array_equal(a.data, b.data)


class TestSegmentMax:
    def test_forward_and_empty(self):
        vals = np.array([[1.0], [5.0], [3.0], [2.0], [0.0], [4.0], [9.0]])
        out = F.segment_max(Tensor(vals), SEGMENTS, 4)
        np.testing.assert_array_equal(out.data.ravel(), [2.0, 9.0, 5.0, 0.0])

    def test_grad(self):
        rng = np.random.default_rng(8)
        check_grad(
            lambda t: (F.segment_max(t, SEGMENTS, 3) ** 2).sum(),
            rng.normal(size=(7, 2)),
        )

    def test_grad_splits_ties(self):
        vals = Tensor(np.array([[2.0], [2.0], [1.0]]), requires_grad=True)
        F.segment_max(vals, np.array([0, 0, 0]), 1).sum().backward()
        np.testing.assert_allclose(vals.grad.ravel(), [0.5, 0.5, 0.0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.segment_max(Tensor(np.zeros((3, 2))), np.array([[0], [1], [0]]), 2)


class TestGatherScatter:
    def test_gather_grad_accumulates_duplicates(self):
        rng = np.random.default_rng(9)
        idx = np.array([0, 2, 2, 1, 0])
        check_grad(
            lambda t: (F.gather_rows(t, idx) ** 3).sum(), rng.normal(size=(3, 2))
        )

    def test_scatter_rows_forward(self):
        base = Tensor(np.zeros((4, 2)))
        rows = Tensor(np.ones((2, 2)))
        out = F.scatter_rows(base, np.array([3, 1]), rows)
        np.testing.assert_array_equal(out.data[[3, 1]], np.ones((2, 2)))
        np.testing.assert_array_equal(out.data[[0, 2]], np.zeros((2, 2)))

    def test_scatter_rows_grads(self):
        rng = np.random.default_rng(10)
        idx = np.array([3, 1])
        rows0 = rng.normal(size=(2, 2))
        check_grad(
            lambda t: (F.scatter_rows(t, idx, Tensor(rows0)) ** 2).sum(),
            rng.normal(size=(4, 2)),
        )
        base0 = rng.normal(size=(4, 2))
        check_grad(
            lambda t: (F.scatter_rows(Tensor(base0), idx, t) ** 2).sum(),
            rng.normal(size=(2, 2)),
        )

    def test_scatter_rows_rejects_duplicates(self):
        with pytest.raises(ValueError):
            F.scatter_rows(Tensor(np.zeros((3, 1))), np.array([1, 1]), Tensor(np.ones((2, 1))))

    def test_scatter_rows_assume_unique_skips_check_only(self):
        base, rows = np.zeros((4, 2)), np.ones((2, 2))
        idx = np.array([0, 3])
        a = F.scatter_rows(Tensor(base), idx, Tensor(rows))
        b = F.scatter_rows(Tensor(base), idx, Tensor(rows), assume_unique=True)
        assert np.array_equal(a.data, b.data)

    def test_index_add_accumulates(self):
        out = F.index_add(
            Tensor(np.zeros((3, 1))),
            np.array([1, 1, 0]),
            Tensor(np.array([[1.0], [2.0], [5.0]])),
        )
        np.testing.assert_array_equal(out.data.ravel(), [5.0, 3.0, 0.0])

    def test_index_add_grads(self):
        rng = np.random.default_rng(11)
        idx = np.array([1, 1, 0])
        vals0 = rng.normal(size=(3, 2))
        check_grad(
            lambda t: (F.index_add(t, idx, Tensor(vals0)) ** 2).sum(),
            rng.normal(size=(3, 2)),
        )
        base0 = rng.normal(size=(3, 2))
        check_grad(
            lambda t: (F.index_add(Tensor(base0), idx, t) ** 2).sum(),
            rng.normal(size=(3, 2)),
        )

    def test_index_validation(self):
        with pytest.raises(ValueError):
            F.index_add(Tensor(np.zeros((3, 1))), np.array([0]), Tensor(np.zeros((2, 1))))
        with pytest.raises(ValueError):
            F.scatter_rows(Tensor(np.zeros((3, 1))), np.array([0]), Tensor(np.zeros((2, 1))))
