"""Autograd engine tests, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, no_grad, stack
from repro.nn import functional as F


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(build, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient against finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    out.backward()
    expected = numeric_grad(lambda arr: build(Tensor(arr)).item(), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol)


class TestElementwise:
    def test_add_broadcast_grad(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.full(4, 3.0))

    def test_mul_grad(self):
        check_grad(lambda t: (t * t * 2.0).sum(), np.random.default_rng(1).normal(size=(3, 3)))

    def test_div_grad(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0.5, 2.0, size=(4,))
        check_grad(lambda t: (1.0 / t).sum(), x)

    def test_pow_grad(self):
        x = np.random.default_rng(3).uniform(0.5, 2.0, size=(5,))
        check_grad(lambda t: (t**3).sum(), x)

    def test_sub_and_neg(self):
        a = Tensor([3.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0 and b.grad[0] == -1.0

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        out = (4.0 - a) + (8.0 / a)
        out.backward()
        np.testing.assert_allclose(a.grad, [-1.0 - 2.0])


class TestMatmul:
    @pytest.mark.parametrize(
        "ashape,bshape",
        [((3, 4), (4, 2)), ((4,), (4, 2)), ((3, 4), (4,)), ((4,), (4,))],
    )
    def test_matmul_grad_shapes(self, ashape, bshape):
        rng = np.random.default_rng(4)
        a0, b0 = rng.normal(size=ashape), rng.normal(size=bshape)

        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        (a @ b).sum().backward()

        na = numeric_grad(lambda arr: float((arr @ b0).sum()), a0.copy())
        nb = numeric_grad(lambda arr: float((a0 @ arr).sum()), b0.copy())
        np.testing.assert_allclose(a.grad, na, atol=1e-5)
        np.testing.assert_allclose(b.grad, nb, atol=1e-5)


class TestReductionsAndShape:
    def test_sum_axis_keepdims(self):
        x = np.random.default_rng(5).normal(size=(2, 3, 4))
        check_grad(lambda t: (t.sum(axis=1, keepdims=True) ** 2).sum(), x)

    def test_mean_grad(self):
        x = np.random.default_rng(6).normal(size=(3, 5))
        check_grad(lambda t: t.mean(), x)

    def test_max_grad_splits_ties(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])

    def test_max_axis(self):
        x = np.random.default_rng(7).normal(size=(4, 3))
        check_grad(lambda t: t.max(axis=0).sum(), x)

    def test_reshape_transpose(self):
        x = np.random.default_rng(8).normal(size=(2, 6))
        check_grad(lambda t: (t.reshape(3, 4).T ** 2).sum(), x)

    def test_getitem_grad(self):
        x = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        x[1].sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0, 0], [1, 1, 1]])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.ones(3), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["relu", "tanh", "sigmoid", "exp"])
    def test_unary_grads(self, op):
        x = np.random.default_rng(9).normal(size=(4, 3)) + 0.1  # avoid relu kink
        check_grad(lambda t: getattr(t, op)().sum(), x)

    def test_log_grad(self):
        x = np.random.default_rng(10).uniform(0.5, 3.0, size=(4,))
        check_grad(lambda t: t.log().sum(), x)


class TestCombinators:
    def test_concat_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        (out * np.arange(10.0).reshape(2, 5)).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_stack_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        out = stack([a, b], axis=0)
        out[1].sum().backward()
        np.testing.assert_allclose(a.grad, np.zeros(3))
        np.testing.assert_allclose(b.grad, np.ones(3))

    def test_shared_node_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        (y + y).backward()
        np.testing.assert_allclose(x.grad, [6.0])


class TestMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_backward_on_nongrad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        assert not x.detach().requires_grad


class TestFunctional:
    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(11).normal(size=(5,)))
        np.testing.assert_allclose(F.softmax(x).data.sum(), 1.0)

    def test_log_softmax_matches_softmax(self):
        x = Tensor(np.random.default_rng(12).normal(size=(7,)))
        np.testing.assert_allclose(F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-12)

    def test_log_softmax_grad(self):
        x = np.random.default_rng(13).normal(size=(6,))
        check_grad(lambda t: F.log_softmax(t)[2], x)

    def test_masked_log_softmax_excludes(self):
        scores = Tensor(np.zeros(4))
        mask = np.array([True, False, True, False])
        lp = F.masked_log_softmax(scores, mask).data
        np.testing.assert_allclose(np.exp(lp[mask]), [0.5, 0.5])
        assert (lp[~mask] < -100).all()

    def test_masked_log_softmax_all_false_raises(self):
        with pytest.raises(ValueError):
            F.masked_log_softmax(Tensor(np.zeros(3)), np.zeros(3, dtype=bool))

    def test_masked_log_softmax_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.masked_log_softmax(Tensor(np.zeros(3)), np.ones(4, dtype=bool))

    def test_segment_sum_values(self):
        vals = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        out = F.segment_sum(vals, np.array([0, 1, 0, 2]), 3)
        np.testing.assert_allclose(out.data, [[4, 6], [2, 3], [6, 7]])

    def test_segment_sum_grad(self):
        x = np.random.default_rng(14).normal(size=(5, 2))
        ids = np.array([0, 0, 1, 2, 1])
        check_grad(lambda t: (F.segment_sum(t, ids, 3) ** 2).sum(), x)

    def test_segment_mean_empty_segment_is_zero(self):
        vals = Tensor(np.ones((2, 3)))
        out = F.segment_mean(vals, np.array([0, 0]), 2)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[0], 1.0)

    def test_segment_sum_bad_ids(self):
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_gather_rows_grad(self):
        x = np.random.default_rng(15).normal(size=(4, 3))
        check_grad(lambda t: F.gather_rows(t, np.array([1, 1, 3])).sum(), x)
