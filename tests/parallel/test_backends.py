"""ExecutionBackend family: contract equivalence, shard/merge mechanics,
and the round-snapshot broadcast regression."""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.parallel import (
    ExecutionBackend,
    ExecutionBackendError,
    ForkBackend,
    InlineBackend,
    MergeBackend,
    MissingCellError,
    ShardBackend,
    resolve_backend,
    task_rng,
)
from repro.parallel.episodes import EpisodePayload, RoundSnapshot, write_snapshot
from repro.parallel.pool import get_context
from repro.store import RunStore


def _draw(key: tuple) -> float:
    """Task-identity randomness: the determinism contract's shape."""
    return float(task_rng(*key).random())


def _scaled(x: int) -> int:
    return x * get_context()["factor"]


RUN = "test-run-fingerprint"


class TestResolveBackend:
    def test_defaults_match_the_workers_flag(self):
        assert isinstance(resolve_backend(None, 1), InlineBackend)
        fork = resolve_backend(None, 3)
        assert isinstance(fork, ForkBackend) and fork.workers == 3

    def test_explicit_backend_wins(self):
        inline = InlineBackend()
        assert resolve_backend(inline, 8) is inline

    def test_rejects_non_backends(self):
        with pytest.raises(TypeError, match="ExecutionBackend"):
            resolve_backend("fork", 1)


class TestDirectBackends:
    @pytest.mark.parametrize("backend", [InlineBackend(), ForkBackend(2)])
    def test_ordered_context_fanout(self, backend):
        out = backend.fanout(_scaled, [1, 2, 3], {"factor": 7})
        assert out == [7, 14, 21]

    def test_inline_equals_fork(self):
        keys = [(3, i) for i in range(5)]
        assert InlineBackend().fanout(_draw, keys) == ForkBackend(3).fanout(_draw, keys)

    def test_pool_handle_maps(self):
        with InlineBackend().pool({"factor": 2}) as pool:
            assert pool.map(_scaled, [5]) == [10]

    def test_compute_without_store_just_produces(self):
        assert InlineBackend().compute("stage", {"k": 1}, lambda: 42) == 42


class TestShardBackend:
    def test_rejects_bad_geometry(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError):
            ShardBackend(store, RUN, 0, 0)
        with pytest.raises(ValueError):
            ShardBackend(store, RUN, 2, 2)
        with pytest.raises(ValueError, match="missing policy"):
            ShardBackend(store, RUN, 2, 0, missing="hope")

    def test_matches_inline_and_publishes_every_cell(self, tmp_path):
        store = RunStore(tmp_path)
        keys = [(9, i) for i in range(6)]
        expected = InlineBackend().fanout(_draw, keys)
        shard = ShardBackend(store, RUN, 3, 1)
        assert shard.fanout(_draw, keys) == expected
        # missing="compute" self-heals: every cell is now published.
        merged = MergeBackend(store, RUN).fanout(_draw, keys)
        assert merged == expected

    def test_sequential_shards_split_via_the_store(self, tmp_path):
        store = RunStore(tmp_path)
        keys = [(1, i) for i in range(5)]
        first = ShardBackend(store, RUN, 2, 0).fanout(_draw, keys)
        before = store.stats.writes
        second = ShardBackend(store, RUN, 2, 1).fanout(_draw, keys)
        assert first == second == InlineBackend().fanout(_draw, keys)
        # The second shard loaded everything the first one published.
        assert store.stats.writes == before

    def test_wait_mode_times_out_with_a_clean_error(self, tmp_path):
        store = RunStore(tmp_path)
        shard = ShardBackend(
            store, RUN, 2, 0, missing="wait", wait_timeout_s=0.3, poll_interval_s=0.05
        )
        with pytest.raises(ExecutionBackendError, match="timed out.*peer cell"):
            shard.fanout(_draw, [(0, i) for i in range(4)])
        # Its own cells were still computed and published before waiting.
        peer = ShardBackend(store, RUN, 2, 1, missing="compute")
        assert peer.fanout(_draw, [(0, i) for i in range(4)]) == InlineBackend().fanout(
            _draw, [(0, i) for i in range(4)]
        )

    def test_distinct_fanout_sites_do_not_collide(self, tmp_path):
        store = RunStore(tmp_path)
        shard = ShardBackend(store, RUN, 1, 0)
        a = shard.fanout(_draw, [(5, 0)])
        b = shard.fanout(_draw, [(6, 0)])  # same site, second visit
        merged = MergeBackend(store, RUN)
        assert merged.fanout(_draw, [(5, 0)]) == a
        assert merged.fanout(_draw, [(6, 0)]) == b
        assert a != b

    def test_runs_are_isolated_by_fingerprint(self, tmp_path):
        store = RunStore(tmp_path)
        ShardBackend(store, "run-a", 1, 0).fanout(_draw, [(7, 0)])
        with pytest.raises(MissingCellError):
            MergeBackend(store, "run-b").fanout(_draw, [(7, 0)])

    def test_pool_is_rejected(self, tmp_path):
        with pytest.raises(ExecutionBackendError, match="persistent pool"):
            ShardBackend(RunStore(tmp_path), RUN, 2, 0).pool()

    def test_compute_memoizes_in_the_shard_store(self, tmp_path):
        store = RunStore(tmp_path)
        calls = []
        producer = lambda: calls.append(1) or "stage-value"
        assert ShardBackend(store, RUN, 2, 0).compute("stage", {"s": 1}, producer) == (
            "stage-value"
        )
        assert MergeBackend(store, RUN).compute("stage", {"s": 1}, producer) == (
            "stage-value"
        )
        assert len(calls) == 1

    def test_wait_mode_non_owners_never_compute_stages(self, tmp_path):
        # Strict partitioning covers stages too: shard 0 owns them, the
        # rest wait — a second terminal must not duplicate the training.
        store = RunStore(tmp_path)
        shard1 = ShardBackend(
            store, RUN, 2, 1, missing="wait", wait_timeout_s=0.3, poll_interval_s=0.05
        )
        with pytest.raises(ExecutionBackendError, match="shard 0 to publish"):
            shard1.compute("stage", {"s": 2}, lambda: pytest.fail("non-owner computed"))
        ShardBackend(store, RUN, 2, 0, missing="wait").compute(
            "stage", {"s": 2}, lambda: "from-shard-0"
        )
        assert shard1.compute("stage", {"s": 2}, lambda: pytest.fail("recompute")) == (
            "from-shard-0"
        )


class TestMergeBackend:
    def test_never_computes(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(MissingCellError, match="did every `repro shard run`"):
            MergeBackend(store, RUN).fanout(_draw, [(0, 0)])

    def test_never_computes_stages_either(self, tmp_path):
        # "Merge is cheap assembly" must hold for memoized stages too:
        # a premature merge fails fast instead of silently retraining.
        store = RunStore(tmp_path)
        with pytest.raises(MissingCellError, match="missing stage"):
            MergeBackend(store, RUN).compute(
                "stage", {"s": 9}, lambda: pytest.fail("merge computed a stage")
            )


class TestRoundSnapshotBroadcast:
    """Regression: batched training used to pickle the full weight
    snapshot into every one of the K slot payloads per round — a
    per-task pickle of per-round broadcast state.  Payloads now carry a
    file reference; weights move O(workers) per round, not O(K)."""

    def test_payload_has_no_inline_state(self):
        fields = {f.name for f in dataclasses.fields(EpisodePayload)}
        assert "state" not in fields and "snapshot" in fields

    def test_payload_pickles_small_regardless_of_weights(self, tmp_path):
        big_state = {"w": np.zeros((256, 256))}
        snapshot = write_snapshot(big_state, str(tmp_path), version=0)
        payload = EpisodePayload(problem_index=0, root=1, slot=0, snapshot=snapshot)
        assert len(pickle.dumps(payload)) < 1024 < len(pickle.dumps(big_state))

    def test_write_snapshot_roundtrips_and_versions(self, tmp_path):
        first = write_snapshot({"w": np.arange(3.0)}, str(tmp_path), version=0)
        second = write_snapshot({"w": np.arange(3.0) * 2}, str(tmp_path), version=1)
        assert first.path == second.path  # one well-known file, replaced atomically
        assert (first.version, second.version) == (0, 1)
        with open(second.path, "rb") as handle:
            assert np.array_equal(pickle.load(handle)["w"], np.arange(3.0) * 2)

    def test_context_caches_by_version(self, tmp_path):
        from repro.parallel.episodes import BatchContext

        ctx = BatchContext([], None, None, None)
        snapshot = write_snapshot({"w": np.arange(2.0)}, str(tmp_path), version=0)
        loaded = ctx.load_snapshot(snapshot)
        assert ctx.load_snapshot(RoundSnapshot(snapshot.path, 0)) is loaded
        replaced = write_snapshot({"w": np.arange(2.0) + 1}, str(tmp_path), version=1)
        assert np.array_equal(ctx.load_snapshot(replaced)["w"], np.arange(2.0) + 1)


def test_every_backend_is_an_execution_backend(tmp_path):
    store = RunStore(tmp_path)
    for backend in (
        InlineBackend(),
        ForkBackend(2),
        ShardBackend(store, RUN, 2, 0),
        MergeBackend(store, RUN),
    ):
        assert isinstance(backend, ExecutionBackend)
