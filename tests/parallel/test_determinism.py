"""Worker-count independence: the parallel engine's core contract.

Training, evaluation sweeps, and scenario replays must produce
bit-identical outputs whether they run serially or fanned out — the
only fields allowed to differ are wall-clock timings.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import RandomPlacementPolicy, RandomTaskEftPolicy
from repro.core import (
    GiPHAgent,
    PlacementProblem,
    ReinforceConfig,
    ReinforceTrainer,
)
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.experiments import QUICK, fig4, fig14, table6
from repro.experiments.runner import HeftPolicy, evaluate_policies
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.devices.dynamics import ChurnConfig
from repro.scenarios import (
    ClusterSpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    replay_scenarios,
)
from repro.sim import MakespanObjective


def make_problems(count: int, seed: int, num_tasks: int = 6, num_devices: int = 3):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks), rng)
        network = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
        out.append(PlacementProblem(graph, network))
    return out


@pytest.fixture(scope="module")
def problems():
    return make_problems(3, seed=0)


def train_weights(problems, batch_size, workers, episodes=6):
    agent = GiPHAgent(np.random.default_rng(7))
    trainer = ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episodes=episodes))
    stats = trainer.train(
        problems, np.random.default_rng(42), batch_size=batch_size, workers=workers
    )
    return agent.state_dict(), stats


def assert_same_weights(a, b):
    assert a.keys() == b.keys()
    for key in a:
        assert np.array_equal(a[key], b[key]), key


class TestBatchedTraining:
    def test_batched_is_worker_count_independent(self, problems):
        serial_w, serial_h = train_weights(problems, batch_size=3, workers=1)
        fanned_w, fanned_h = train_weights(problems, batch_size=3, workers=4)
        assert_same_weights(serial_w, fanned_w)
        assert serial_h == fanned_h  # EpisodeStats are fully deterministic

    def test_k1_reproduces_serial_semantics(self, problems):
        serial_w, serial_h = train_weights(problems, batch_size=1, workers=1)
        # K=1 must be today's serial trainer exactly — regardless of the
        # worker count, which has nothing to fan out at K=1.
        k1_w, k1_h = train_weights(problems, batch_size=1, workers=4)
        assert_same_weights(serial_w, k1_w)
        assert serial_h == k1_h

    def test_batched_history_bookkeeping(self, problems):
        _, stats = train_weights(problems, batch_size=4, workers=2, episodes=6)
        assert len(stats) == 6
        assert [s.episode for s in stats] == list(range(6))
        assert all(np.isfinite(s.grad_norm) for s in stats)

    def test_batched_rejects_unreseedable_noisy_objective(self, problems):
        class OpaqueNoisy:
            """Non-deterministic and no ``reseeded`` hook."""

            deterministic = False

            def evaluate(self, cost_model, placement):
                return 1.0

        agent = GiPHAgent(np.random.default_rng(0))
        trainer = ReinforceTrainer(agent, OpaqueNoisy(), ReinforceConfig(episodes=2))
        with pytest.raises(ValueError, match="reseeded"):
            trainer.train(problems, np.random.default_rng(2), batch_size=2)


def train_noisy_weights(problems, workers, batch_size=3, episodes=6):
    agent = GiPHAgent(np.random.default_rng(7))
    trainer = ReinforceTrainer(
        agent,
        MakespanObjective(noise=0.2, rng=np.random.default_rng(1)),
        ReinforceConfig(episodes=episodes),
    )
    stats = trainer.train(
        problems, np.random.default_rng(42), batch_size=batch_size, workers=workers
    )
    return agent.state_dict(), stats


class TestNoiseResamplingTraining:
    """Batched REINFORCE with a noisy objective: per-episode derived
    noise streams instead of the old blanket rejection."""

    def test_worker_count_independence(self, problems):
        serial_w, serial_h = train_noisy_weights(problems, workers=1)
        fanned_w, fanned_h = train_noisy_weights(problems, workers=4)
        assert_same_weights(serial_w, fanned_w)
        assert serial_h == fanned_h

    def test_noise_actually_resampled(self, problems):
        # The noisy run must differ from the noise-free run — otherwise
        # the mode silently dropped the noise instead of deriving streams.
        noisy_w, _ = train_noisy_weights(problems, workers=1)
        clean_w, _ = train_weights(problems, batch_size=3, workers=1)
        assert any(
            not np.array_equal(noisy_w[key], clean_w[key]) for key in noisy_w
        )


class TestEvaluatePolicies:
    def test_worker_count_independence(self, problems):
        policies = {
            "heft": HeftPolicy(),
            "task-eft": RandomTaskEftPolicy(),
            "random": RandomPlacementPolicy(),
        }
        serial = evaluate_policies(policies, problems, np.random.default_rng(5), workers=1)
        fanned = evaluate_policies(policies, problems, np.random.default_rng(5), workers=4)
        for name in policies:
            assert np.array_equal(serial.curves[name], fanned.curves[name]), name
            assert serial.finals[name] == fanned.finals[name], name
            assert serial.traces[name] == fanned.traces[name], name
            assert (
                serial.evaluator_stats[name].as_dict() == fanned.evaluator_stats[name].as_dict()
            ), name

    def test_noise_path_worker_count_independent(self, problems):
        policies = {"task-eft": RandomTaskEftPolicy()}
        serial = evaluate_policies(
            policies, problems, np.random.default_rng(9), noise=0.2, workers=1
        )
        fanned = evaluate_policies(
            policies, problems, np.random.default_rng(9), noise=0.2, workers=3
        )
        assert serial.finals["task-eft"] == fanned.finals["task-eft"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_shared_noisy_objective_rejected(self, problems, workers):
        # Any worker count: cases see pickled objective copies, so a
        # shared noise rng could not advance across cases as it used to.
        shared = MakespanObjective(noise=0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="non-deterministic"):
            evaluate_policies(
                {"r": RandomPlacementPolicy()},
                problems,
                np.random.default_rng(1),
                objective=shared,
                workers=workers,
            )


class TestNoiseSharedCaseStreams:
    """The fig4 panel-comparability mechanism: handing evaluate_policies
    equal-seeded rngs must evaluate the same case streams regardless of
    the noise level, so panels differ only in the injected noise."""

    def test_noise_level_does_not_move_case_streams(self, problems):
        policies = {"random": RandomPlacementPolicy()}
        clean = evaluate_policies(policies, problems, np.random.default_rng(11), noise=0.0)
        noisy = evaluate_policies(policies, problems, np.random.default_rng(11), noise=0.3)
        # Random search proposes placements independently of objective
        # values, so identical case streams mean identical relocation
        # sequences — while the sampled values themselves differ.
        assert [t.relocation_counts for t in clean.traces["random"]] == [
            t.relocation_counts for t in noisy.traces["random"]
        ]
        assert clean.finals["random"] != noisy.finals["random"]


def deterministic_steps(report):
    """Step fields minus wall-clock timing."""
    return [
        (
            s.index,
            s.kind,
            s.num_graphs,
            s.num_devices,
            s.mean_value,
            s.mean_slr,
            s.oracle_slr,
            s.regret,
            s.migrated_tasks,
            s.migration_cost_ms,
            s.evaluations,
            s.cache_hit_rate,
        )
        for s in report.steps
    ]


def tiny_spec(name: str, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        seed=seed,
        workload=WorkloadSpec(initial_graphs=2, num_tasks=5),
        cluster=ClusterSpec(num_devices=5),
        churn=ChurnConfig(min_devices=4, max_devices=5, num_changes=2),
    )


class TestScenarioReplay:
    POLICIES = staticmethod(
        lambda: {"task-eft": RandomTaskEftPolicy(), "random": RandomPlacementPolicy()}
    )

    def test_worker_count_independence(self):
        spec = tiny_spec("tiny-churn", seed=1)
        serial = ScenarioRunner(spec).run(self.POLICIES(), workers=1)
        fanned = ScenarioRunner(spec).run(self.POLICIES(), workers=4)
        assert serial.oracle_slr == fanned.oracle_slr
        for name in serial.reports:
            assert deterministic_steps(serial.reports[name]) == deterministic_steps(
                fanned.reports[name]
            ), name
            assert (
                serial.reports[name].evaluator_stats == fanned.reports[name].evaluator_stats
            ), name

    def test_grid_replay_matches_serial(self):
        specs = [tiny_spec("tiny-a", seed=1), tiny_spec("tiny-b", seed=2)]
        serial = replay_scenarios(specs, self.POLICIES(), workers=1)
        fanned = replay_scenarios(specs, self.POLICIES(), workers=3)
        assert serial.keys() == fanned.keys()
        for scenario, result in serial.items():
            assert result.oracle_slr == fanned[scenario].oracle_slr
            for name in result.reports:
                assert deterministic_steps(result.reports[name]) == deterministic_steps(
                    fanned[scenario].reports[name]
                ), (scenario, name)


@pytest.fixture(scope="module")
def micro_fig14_scale():
    return dataclasses.replace(
        QUICK,
        name="micro-fig14",
        num_tasks=5,
        num_devices=3,
        train_graphs=2,
        test_cases=2,
        num_networks=2,
        convergence_episodes=2,
        convergence_eval_every=1,
        convergence_eval_cases=1,
    )


@pytest.fixture(scope="module")
def fig14_serial(micro_fig14_scale):
    return fig14.run(micro_fig14_scale, seed=3, workers=1)


class TestFig14Seeding:
    def test_worker_count_independence(self, micro_fig14_scale, fig14_serial):
        fanned = fig14.run(micro_fig14_scale, seed=3, workers=2)
        assert fig14_serial.data == fanned.data

    def test_seed_changes_the_figure(self, micro_fig14_scale, fig14_serial):
        # The seed used to be swallowed by hardcoded eval/train streams.
        other = fig14.run(micro_fig14_scale, seed=4)
        assert fig14_serial.data != other.data

    def test_cells_draw_from_distinct_streams(self, fig14_serial):
        # Same variant, different settings (and vice versa) must not share
        # a training stream: identical curves across cells would be the
        # old spurious correlation.
        settings = list(fig14_serial.data)
        giph_curves = [tuple(fig14_serial.data[s]["giph"]) for s in settings]
        assert len(set(giph_curves)) > 1


@pytest.fixture(scope="module")
def micro_experiment_scale():
    """Smallest scale exercising the formerly-serial experiment grids."""
    return dataclasses.replace(
        QUICK,
        name="micro-parallel",
        num_tasks=5,
        num_devices=3,
        train_graphs=2,
        test_cases=2,
        episodes=2,
        num_networks=2,
        pairwise_cases=2,
    )


class TestFig4Parallel:
    """fig4 joined the parallel rollout in PR 4: training cells and eval
    cases fan out, and the two noise panels of a dataset share case
    seeds (the seed version evaluated them on different cases)."""

    @pytest.fixture(scope="class")
    def serial(self, micro_experiment_scale):
        return fig4.run(micro_experiment_scale, seed=3, workers=1)

    @staticmethod
    def deterministic_data(report):
        # Strips wall-clock members (search_seconds, nested gnn_seconds)
        # the same way the shard-merge equality does.
        return report.stable_data()

    def test_worker_count_independence(self, micro_experiment_scale, serial):
        fanned = fig4.run(micro_experiment_scale, seed=3, workers=4)
        assert self.deterministic_data(serial) == self.deterministic_data(fanned)

    def test_noise_panels_are_comparable(self, serial):
        # Panels of one dataset must record the same eval stream (same
        # case seeds / initial placements); panels of different datasets
        # must not.
        by_dataset: dict[str, list] = {}
        for panel, payload in serial.data.items():
            dataset = panel.split(",")[0]
            by_dataset.setdefault(dataset, []).append(payload["eval_stream"])
        for dataset, streams in by_dataset.items():
            assert len(streams) == 2 and streams[0] == streams[1], dataset
        (single_stream, _), (multi_stream, _) = by_dataset.values()
        assert single_stream != multi_stream

    def test_seed_moves_the_figure(self, micro_experiment_scale, serial):
        other = fig4.run(micro_experiment_scale, seed=4, workers=1)
        assert self.deterministic_data(serial) != self.deterministic_data(other)


class TestTable6Parallel:
    """table6's six-variant training grid — the widest formerly-serial
    single-dataset grid — fans out with bit-identical reports."""

    def test_worker_count_independence(self, micro_experiment_scale):
        serial = table6.run(micro_experiment_scale, seed=3, workers=1)
        fanned = table6.run(micro_experiment_scale, seed=3, workers=4)
        assert serial.data == fanned.data


class TestInRunOracle:
    """The fresh-search oracle inside a single ScenarioRunner.run fans
    its events out; per-(event, graph) streams keep the series fixed."""

    def test_oracle_worker_count_independence(self):
        spec = tiny_spec("oracle-fanout", seed=9)
        serial = ScenarioRunner(spec)._oracle_slr(workers=1)
        fanned = ScenarioRunner(spec)._oracle_slr(workers=4)
        assert serial == fanned

    def test_oracle_independent_of_replayed_policies(self):
        # run() computes the oracle with the caller's worker count; the
        # resulting series must match a pure serial oracle pass.
        spec = tiny_spec("oracle-in-run", seed=9)
        baseline = ScenarioRunner(spec)._oracle_slr(workers=1)
        result = ScenarioRunner(spec).run(
            {"task-eft": RandomTaskEftPolicy()}, workers=3
        )
        assert list(result.oracle_slr) == baseline
