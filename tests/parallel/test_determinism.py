"""Worker-count independence: the parallel engine's core contract.

Training, evaluation sweeps, and scenario replays must produce
bit-identical outputs whether they run serially or fanned out — the
only fields allowed to differ are wall-clock timings.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines import RandomPlacementPolicy, RandomTaskEftPolicy
from repro.core import (
    GiPHAgent,
    PlacementProblem,
    ReinforceConfig,
    ReinforceTrainer,
)
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.experiments import QUICK, fig14
from repro.experiments.runner import HeftPolicy, evaluate_policies
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.devices.dynamics import ChurnConfig
from repro.scenarios import (
    ClusterSpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    replay_scenarios,
)
from repro.sim import MakespanObjective


def make_problems(count: int, seed: int, num_tasks: int = 6, num_devices: int = 3):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks), rng)
        network = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
        out.append(PlacementProblem(graph, network))
    return out


@pytest.fixture(scope="module")
def problems():
    return make_problems(3, seed=0)


def train_weights(problems, batch_size, workers, episodes=6):
    agent = GiPHAgent(np.random.default_rng(7))
    trainer = ReinforceTrainer(agent, MakespanObjective(), ReinforceConfig(episodes=episodes))
    stats = trainer.train(
        problems, np.random.default_rng(42), batch_size=batch_size, workers=workers
    )
    return agent.state_dict(), stats


def assert_same_weights(a, b):
    assert a.keys() == b.keys()
    for key in a:
        assert np.array_equal(a[key], b[key]), key


class TestBatchedTraining:
    def test_batched_is_worker_count_independent(self, problems):
        serial_w, serial_h = train_weights(problems, batch_size=3, workers=1)
        fanned_w, fanned_h = train_weights(problems, batch_size=3, workers=4)
        assert_same_weights(serial_w, fanned_w)
        assert serial_h == fanned_h  # EpisodeStats are fully deterministic

    def test_k1_reproduces_serial_semantics(self, problems):
        serial_w, serial_h = train_weights(problems, batch_size=1, workers=1)
        # K=1 must be today's serial trainer exactly — regardless of the
        # worker count, which has nothing to fan out at K=1.
        k1_w, k1_h = train_weights(problems, batch_size=1, workers=4)
        assert_same_weights(serial_w, k1_w)
        assert serial_h == k1_h

    def test_batched_history_bookkeeping(self, problems):
        _, stats = train_weights(problems, batch_size=4, workers=2, episodes=6)
        assert len(stats) == 6
        assert [s.episode for s in stats] == list(range(6))
        assert all(np.isfinite(s.grad_norm) for s in stats)

    def test_batched_rejects_noisy_objective(self, problems):
        agent = GiPHAgent(np.random.default_rng(0))
        noisy = MakespanObjective(noise=0.1, rng=np.random.default_rng(1))
        trainer = ReinforceTrainer(agent, noisy, ReinforceConfig(episodes=2))
        with pytest.raises(ValueError, match="deterministic"):
            trainer.train(problems, np.random.default_rng(2), batch_size=2)


class TestEvaluatePolicies:
    def test_worker_count_independence(self, problems):
        policies = {
            "heft": HeftPolicy(),
            "task-eft": RandomTaskEftPolicy(),
            "random": RandomPlacementPolicy(),
        }
        serial = evaluate_policies(policies, problems, np.random.default_rng(5), workers=1)
        fanned = evaluate_policies(policies, problems, np.random.default_rng(5), workers=4)
        for name in policies:
            assert np.array_equal(serial.curves[name], fanned.curves[name]), name
            assert serial.finals[name] == fanned.finals[name], name
            assert serial.traces[name] == fanned.traces[name], name
            assert (
                serial.evaluator_stats[name].as_dict() == fanned.evaluator_stats[name].as_dict()
            ), name

    def test_noise_path_worker_count_independent(self, problems):
        policies = {"task-eft": RandomTaskEftPolicy()}
        serial = evaluate_policies(
            policies, problems, np.random.default_rng(9), noise=0.2, workers=1
        )
        fanned = evaluate_policies(
            policies, problems, np.random.default_rng(9), noise=0.2, workers=3
        )
        assert serial.finals["task-eft"] == fanned.finals["task-eft"]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_shared_noisy_objective_rejected(self, problems, workers):
        # Any worker count: cases see pickled objective copies, so a
        # shared noise rng could not advance across cases as it used to.
        shared = MakespanObjective(noise=0.1, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="non-deterministic"):
            evaluate_policies(
                {"r": RandomPlacementPolicy()},
                problems,
                np.random.default_rng(1),
                objective=shared,
                workers=workers,
            )


def deterministic_steps(report):
    """Step fields minus wall-clock timing."""
    return [
        (
            s.index,
            s.kind,
            s.num_graphs,
            s.num_devices,
            s.mean_value,
            s.mean_slr,
            s.oracle_slr,
            s.regret,
            s.migrated_tasks,
            s.migration_cost_ms,
            s.evaluations,
            s.cache_hit_rate,
        )
        for s in report.steps
    ]


def tiny_spec(name: str, seed: int) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        seed=seed,
        workload=WorkloadSpec(initial_graphs=2, num_tasks=5),
        cluster=ClusterSpec(num_devices=5),
        churn=ChurnConfig(min_devices=4, max_devices=5, num_changes=2),
    )


class TestScenarioReplay:
    POLICIES = staticmethod(
        lambda: {"task-eft": RandomTaskEftPolicy(), "random": RandomPlacementPolicy()}
    )

    def test_worker_count_independence(self):
        spec = tiny_spec("tiny-churn", seed=1)
        serial = ScenarioRunner(spec).run(self.POLICIES(), workers=1)
        fanned = ScenarioRunner(spec).run(self.POLICIES(), workers=4)
        assert serial.oracle_slr == fanned.oracle_slr
        for name in serial.reports:
            assert deterministic_steps(serial.reports[name]) == deterministic_steps(
                fanned.reports[name]
            ), name
            assert (
                serial.reports[name].evaluator_stats == fanned.reports[name].evaluator_stats
            ), name

    def test_grid_replay_matches_serial(self):
        specs = [tiny_spec("tiny-a", seed=1), tiny_spec("tiny-b", seed=2)]
        serial = replay_scenarios(specs, self.POLICIES(), workers=1)
        fanned = replay_scenarios(specs, self.POLICIES(), workers=3)
        assert serial.keys() == fanned.keys()
        for scenario, result in serial.items():
            assert result.oracle_slr == fanned[scenario].oracle_slr
            for name in result.reports:
                assert deterministic_steps(result.reports[name]) == deterministic_steps(
                    fanned[scenario].reports[name]
                ), (scenario, name)


@pytest.fixture(scope="module")
def micro_fig14_scale():
    return dataclasses.replace(
        QUICK,
        name="micro-fig14",
        num_tasks=5,
        num_devices=3,
        train_graphs=2,
        test_cases=2,
        num_networks=2,
        convergence_episodes=2,
        convergence_eval_every=1,
        convergence_eval_cases=1,
    )


@pytest.fixture(scope="module")
def fig14_serial(micro_fig14_scale):
    return fig14.run(micro_fig14_scale, seed=3, workers=1)


class TestFig14Seeding:
    def test_worker_count_independence(self, micro_fig14_scale, fig14_serial):
        fanned = fig14.run(micro_fig14_scale, seed=3, workers=2)
        assert fig14_serial.data == fanned.data

    def test_seed_changes_the_figure(self, micro_fig14_scale, fig14_serial):
        # The seed used to be swallowed by hardcoded eval/train streams.
        other = fig14.run(micro_fig14_scale, seed=4)
        assert fig14_serial.data != other.data

    def test_cells_draw_from_distinct_streams(self, fig14_serial):
        # Same variant, different settings (and vice versa) must not share
        # a training stream: identical curves across cells would be the
        # old spurious correlation.
        settings = list(fig14_serial.data)
        giph_curves = [tuple(fig14_serial.data[s]["giph"]) for s in settings]
        assert len(set(giph_curves)) > 1
