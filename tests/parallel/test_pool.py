"""WorkerPool unit tests: ordering, context broadcast, determinism."""

import numpy as np
import pytest

from repro.parallel import WorkerPool, get_context, resolve_workers, task_rng


def _square(x: int) -> int:
    return x * x


def _scaled(x: int) -> int:
    return x * get_context()["factor"]


def _draw(key: tuple) -> float:
    return float(task_rng(*key).random())


def _mutate_context(_: int) -> int:
    ctx = get_context()
    ctx["items"].append(1)
    return len(ctx["items"])


def _boom(x: int) -> int:
    raise RuntimeError(f"task {x} failed")


def _nested(x: int) -> list:
    # A task may itself open an inline pool; the outer context must be
    # restored afterwards.
    with WorkerPool(1, context={"factor": 10}) as inner:
        scaled = inner.map(_scaled, [x])
    return [scaled[0], _scaled(x)]


class TestWorkerPool:
    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_results_in_task_order(self, workers):
        with WorkerPool(workers) as pool:
            assert pool.map(_square, range(8)) == [x * x for x in range(8)]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_context_broadcast(self, workers):
        with WorkerPool(workers, context={"factor": 7}) as pool:
            assert pool.map(_scaled, [1, 2, 3]) == [7, 14, 21]

    def test_inline_context_is_a_private_copy(self):
        # The inline path must behave like a worker: mutations land on a
        # pickled copy, never on the caller's object.
        original = {"items": []}
        with WorkerPool(1, context=original) as pool:
            counts = pool.map(_mutate_context, range(3))
        assert counts == [1, 2, 3]  # copy persists across map calls...
        assert original["items"] == []  # ...but the original is untouched

    def test_nested_inline_pools_restore_context(self):
        with WorkerPool(1, context={"factor": 2}) as pool:
            results = pool.map(_nested, [5])
        # Inner pool saw factor=10, outer context (factor=2) was restored.
        assert results == [[50, 10]]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_task_errors_propagate(self, workers):
        with WorkerPool(workers) as pool:
            with pytest.raises(RuntimeError, match="failed"):
                pool.map(_boom, [0, 1])

    def test_worker_count_independence(self):
        keys = [(11, i) for i in range(6)]
        with WorkerPool(1) as serial, WorkerPool(3) as parallel:
            assert serial.map(_draw, keys) == parallel.map(_draw, keys)


class TestTaskRng:
    def test_same_key_same_stream(self):
        a, b = task_rng(3, 1, 4), task_rng(3, 1, 4)
        assert np.array_equal(a.random(5), b.random(5))

    def test_distinct_keys_distinct_streams(self):
        assert task_rng(0, 1).random() != task_rng(0, 2).random()
        assert task_rng(0, 1).random() != task_rng(1, 1).random()


class TestResolveWorkers:
    def test_explicit_count_passes_through(self):
        assert resolve_workers(3) == 3

    def test_zero_and_none_mean_all_cpus(self):
        assert resolve_workers(0) >= 1
        assert resolve_workers(None) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)
