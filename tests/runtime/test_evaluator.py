"""Correctness of the runtime scoring subsystem.

The contract under test: every value produced by the batched/caching
fast path is *bit-identical* to the seed scoring path (per-call
``Objective.evaluate`` through ``sim.executor.simulate``), and the
incremental ``GpNetBuilder.update`` equals a full ``build``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.env import PlacementEnv
from repro.core.features import FeatureConfig, GpNetBuilder
from repro.core.placement import PlacementProblem, random_placement
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.runtime import EvaluatorPool, FastSimulator, PlacementEvaluator
from repro.sim.executor import simulate
from repro.sim.latency import CostModel
from repro.sim.objectives import EnergyObjective, MakespanObjective, TotalCostObjective


def make_problem(seed: int) -> PlacementProblem:
    rng = np.random.default_rng(seed)
    graph = generate_task_graph(
        TaskGraphParams(
            num_tasks=int(rng.integers(3, 18)),
            connect_prob=float(rng.uniform(0.1, 0.6)),
        ),
        rng,
    )
    network = generate_device_network(
        DeviceNetworkParams(num_devices=int(rng.integers(2, 8))), rng
    )
    return PlacementProblem(graph, network)


# -- fast simulator ---------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_fast_simulator_matches_executor_exactly(seed):
    problem = make_problem(seed)
    rng = np.random.default_rng(seed + 1)
    sim = FastSimulator(problem)
    for _ in range(3):
        placement = random_placement(problem, rng)
        exact = simulate(problem.graph, problem.network, placement, problem.cost_model)
        fast = sim.run(placement)
        assert fast.makespan == exact.makespan
        assert (fast.start == exact.start).all()
        assert (fast.finish == exact.finish).all()
        assert fast.arrival == exact.arrival
        assert (fast.device_last_finish == exact.device_last_finish).all()
        assert fast.placement == exact.placement


def test_fast_simulator_batch_costs_match_cost_model():
    problem = make_problem(3)
    cm = problem.cost_model
    rng = np.random.default_rng(0)
    sim = FastSimulator(problem)
    placements = [random_placement(problem, rng) for _ in range(4)]
    compute, comm = sim.batch_costs(np.array(placements))
    for b, placement in enumerate(placements):
        for i in range(problem.graph.num_tasks):
            assert compute[b, i] == cm.compute_time(i, placement[i])
        for k, edge in enumerate(problem.graph.edges):
            u, v = edge
            assert comm[b, k] == cm.comm_time(edge, placement[u], placement[v])


def test_fast_simulator_rejects_infeasible_placement():
    problem = make_problem(5)
    sim = FastSimulator(problem)
    bad = [problem.network.num_devices + 3] * problem.graph.num_tasks
    with pytest.raises(ValueError):
        sim.run(bad)


# -- evaluator scoring ------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_evaluate_many_bit_identical_to_objective_loop(seed):
    problem = make_problem(seed)
    rng = np.random.default_rng(seed + 2)
    objective = MakespanObjective()
    evaluator = PlacementEvaluator(problem, objective)
    placements = [random_placement(problem, rng) for _ in range(6)]
    placements += placements[:3]  # duplicates exercise the cache
    expected = np.array(
        [objective.evaluate(problem.cost_model, p) for p in placements]
    )
    got = evaluator.evaluate_many(placements)
    assert (got == expected).all()
    # Singles agree with the batch (and hit the now-warm cache).
    for p, want in zip(placements, expected):
        assert evaluator.evaluate(p) == want
    assert evaluator.stats.cache_hits > 0


def test_evaluator_deterministic_objectives_cache():
    problem = make_problem(11)
    rng = np.random.default_rng(1)
    placement = random_placement(problem, rng)
    for objective in (MakespanObjective(), TotalCostObjective(), EnergyObjective()):
        evaluator = PlacementEvaluator(problem, objective)
        first = evaluator.evaluate(placement)
        second = evaluator.evaluate(placement)
        assert first == second == objective.evaluate(problem.cost_model, placement)
        assert evaluator.stats.cache_hits == 1
        assert evaluator.stats.cache_misses == 1


def test_evaluator_noisy_objective_bypasses_cache():
    problem = make_problem(13)
    rng = np.random.default_rng(2)
    placement = random_placement(problem, rng)
    noisy = MakespanObjective(noise=0.3, rng=np.random.default_rng(42))
    reference = MakespanObjective(noise=0.3, rng=np.random.default_rng(42))
    assert not noisy.deterministic
    evaluator = PlacementEvaluator(problem, noisy)
    values = [evaluator.evaluate(placement) for _ in range(4)]
    expected = [reference.evaluate(problem.cost_model, placement) for _ in range(4)]
    assert values == expected  # same rng stream as the direct path
    assert len(set(values)) > 1  # noise resampled per call, not cached
    assert evaluator.stats.cache_hits == 0
    # the batch API walks the same per-call path in order
    noisy2 = MakespanObjective(noise=0.3, rng=np.random.default_rng(42))
    batch = PlacementEvaluator(problem, noisy2).evaluate_many([placement] * 4)
    assert batch.tolist() == expected


def test_evaluator_timeline_cached_and_exact():
    problem = make_problem(17)
    rng = np.random.default_rng(3)
    placement = random_placement(problem, rng)
    evaluator = PlacementEvaluator(problem, MakespanObjective())
    t1 = evaluator.timeline(placement)
    t2 = evaluator.timeline(placement)
    assert t1 is t2
    exact = simulate(problem.graph, problem.network, placement, problem.cost_model)
    assert t1.makespan == exact.makespan
    assert evaluator.stats.timeline_hits == 1


def test_evaluator_lru_eviction_and_validation():
    problem = make_problem(19)
    rng = np.random.default_rng(4)
    evaluator = PlacementEvaluator(problem, MakespanObjective(), cache_size=2)
    a, b, c = (random_placement(problem, rng) for _ in range(3))
    evaluator.evaluate(a)
    evaluator.evaluate(b)
    evaluator.evaluate(c)  # evicts a
    evaluator.evaluate(a)
    assert evaluator.stats.cache_misses == 4
    with pytest.raises(ValueError):
        evaluator.evaluate([0] * (problem.graph.num_tasks + 1))
    with pytest.raises(ValueError):
        PlacementEvaluator(problem, MakespanObjective(), cache_size=0)
    assert len(evaluator.evaluate_many([])) == 0


def test_evaluator_does_not_fast_path_makespan_subclasses():
    """A deterministic MakespanObjective subclass with an overridden
    evaluate() must score through its own evaluate, not the plain-makespan
    timeline fast path (which would silently drop the override)."""

    class PenalizedMakespan(MakespanObjective):
        def evaluate(self, cost_model, placement):
            return super().evaluate(cost_model, placement) + 1000.0

    problem = make_problem(37)
    rng = np.random.default_rng(9)
    placement = random_placement(problem, rng)
    objective = PenalizedMakespan()
    evaluator = PlacementEvaluator(problem, objective)
    expected = objective.evaluate(problem.cost_model, placement)
    assert evaluator.evaluate(placement) == expected
    assert evaluator.evaluate_many([placement])[0] == expected
    assert evaluator.evaluate(placement) == expected  # cached, still penalized
    assert evaluator.stats.fast_path == 0


def test_evaluator_pool_identity_eviction_and_stats():
    objective = MakespanObjective()
    problems = [make_problem(40 + k) for k in range(3)]
    rng = np.random.default_rng(8)
    pool = EvaluatorPool(objective, max_problems=2)
    first = pool.get(problems[0])
    assert pool.get(problems[0]) is first
    first.evaluate(random_placement(problems[0], rng))
    pool.get(problems[1])
    pool.get(problems[2])  # evicts problems[0]'s evaluator...
    assert len(pool) == 2
    assert pool.get(problems[0]) is not first  # ...which restarts cold
    assert pool.stats().evaluations == 1  # evicted counters are retained
    with pytest.raises(ValueError):
        EvaluatorPool(objective, max_problems=0)


# -- incremental gpNet updates ----------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), potential=st.booleans())
def test_gpnet_update_equals_full_build(seed, potential):
    problem = make_problem(seed)
    rng = np.random.default_rng(seed + 3)
    config = FeatureConfig(use_start_time_potential=potential)
    incremental = GpNetBuilder(problem, config)
    reference = GpNetBuilder(problem, config)
    placement = list(random_placement(problem, rng))
    current = incremental.build(placement)
    for _ in range(8):
        task = int(rng.integers(0, problem.graph.num_tasks))
        placement[task] = int(rng.choice(list(problem.feasible_sets[task])))
        current = incremental.update(current, tuple(placement), task)
        fresh = reference.build(tuple(placement))
        assert current.placement == fresh.placement
        for name in (
            "task_of",
            "device_of",
            "is_pivot",
            "edge_src",
            "edge_dst",
            "node_features",
            "edge_features",
        ):
            assert (getattr(current, name) == getattr(fresh, name)).all(), name
        assert all((x == y).all() for x, y in zip(current.options, fresh.options))


def test_gpnet_update_falls_back_without_raw_state():
    problem = make_problem(23)
    rng = np.random.default_rng(5)
    builder = GpNetBuilder(problem)
    p1 = list(random_placement(problem, rng))
    net1 = builder.build(p1)
    # Build a different placement in between: the raw cache no longer
    # matches net1, so update must fall back to a full rebuild.
    p2 = list(random_placement(problem, rng))
    builder.build(p2)
    task = int(rng.integers(0, problem.graph.num_tasks))
    p1[task] = int(rng.choice(list(problem.feasible_sets[task])))
    updated = builder.update(net1, tuple(p1), task)
    fresh = GpNetBuilder(problem).build(tuple(p1))
    assert (updated.node_features == fresh.node_features).all()
    assert (updated.edge_features == fresh.edge_features).all()


def test_gpnet_update_noop_returns_previous():
    problem = make_problem(29)
    rng = np.random.default_rng(6)
    builder = GpNetBuilder(problem)
    placement = random_placement(problem, rng)
    net = builder.build(placement)
    assert builder.update(net, placement, moved_task=0) is net


# -- env integration --------------------------------------------------------------------


def test_env_shared_evaluator_and_binding_checks():
    problem = make_problem(31)
    objective = MakespanObjective()
    evaluator = PlacementEvaluator(problem, objective)
    rng = np.random.default_rng(7)
    env = PlacementEnv(problem, objective, evaluator=evaluator)
    state = env.reset(rng=rng)
    exact = objective.evaluate(problem.cost_model, state.placement)
    assert state.objective_value == exact
    for _ in range(4):
        mask = env.action_mask()
        action = int(np.flatnonzero(mask)[0])
        state, reward, _ = env.step(action)
        assert state.objective_value == objective.evaluate(
            problem.cost_model, state.placement
        )
    assert evaluator.stats.evaluations >= 5
    other = PlacementEvaluator(problem, MakespanObjective())
    with pytest.raises(ValueError):
        PlacementEnv(problem, objective, evaluator=other)


# -- CostModel.realize edge cases -------------------------------------------------------


def test_realize_edge_cases():
    rng = np.random.default_rng(0)
    # noise == 0: expectation passes through untouched, rng unused.
    assert CostModel.realize(3.5, 0.0, None) == 3.5
    assert CostModel.realize(3.5, 0.0, rng) == 3.5
    # zero expectation stays exactly zero even under noise.
    assert CostModel.realize(0.0, 0.5, rng) == 0.0
    # no rng: falls back to the expectation.
    assert CostModel.realize(2.0, 0.5, None) == 2.0
    # invalid noise levels raise once they would matter.
    with pytest.raises(ValueError):
        CostModel.realize(2.0, 1.5, rng)
    with pytest.raises(ValueError):
        CostModel.realize(2.0, -0.1, rng)
    # valid noise stays within the ±noise band around the expectation.
    for _ in range(50):
        value = CostModel.realize(2.0, 0.25, rng)
        assert 1.5 <= value <= 2.5
