"""Event-stream materialization: determinism, ordering, interleaving."""

import numpy as np
import pytest

from repro.devices import ChurnConfig
from repro.scenarios import (
    DEFAULT_REGISTRY,
    ClusterSpec,
    ScenarioSpec,
    WorkloadSpec,
    describe_events,
    materialize,
)


def networks_equal(a, b):
    return (
        a.devices == b.devices
        and np.array_equal(a.bandwidth, b.bandwidth)
        and np.array_equal(a.delay, b.delay)
    )


def streams_identical(a, b):
    if len(a.events) != len(b.events):
        return False
    if not networks_equal(a.initial_network, b.initial_network):
        return False
    if a.initial_graphs != b.initial_graphs:
        return False
    for ea, eb in zip(a.events, b.events):
        if (ea.index, ea.step, ea.kind, ea.uid, ea.factor) != (
            eb.index,
            eb.step,
            eb.kind,
            eb.uid,
            eb.factor,
        ):
            return False
        if not networks_equal(ea.network, eb.network):
            return False
        if ea.graph != eb.graph:
            return False
    return True


class TestDeterminism:
    @pytest.mark.parametrize("name", DEFAULT_REGISTRY.names())
    def test_same_seed_bit_identical_streams(self, name):
        spec = DEFAULT_REGISTRY.get(name)
        assert streams_identical(materialize(spec), materialize(spec))

    def test_different_seed_different_stream(self):
        spec = DEFAULT_REGISTRY.get("edge-churn")
        a = materialize(spec)
        b = materialize(DEFAULT_REGISTRY.get("edge-churn", seed=99))
        assert not streams_identical(a, b)


class TestStructure:
    def test_churn_only_stream_has_one_event_per_change(self):
        mat = materialize(DEFAULT_REGISTRY.get("edge-churn"))
        assert mat.num_events == mat.spec.churn.num_changes
        assert [e.index for e in mat.events] == list(range(mat.num_events))
        assert all(e.is_network_event for e in mat.events)

    def test_arrival_only_stream(self):
        mat = materialize(DEFAULT_REGISTRY.get("stable-cluster"))
        assert {e.kind for e in mat.events} == {"arrival"}
        assert all(e.graph is not None for e in mat.events)
        # static cluster: every event carries the initial network
        assert all(networks_equal(e.network, mat.initial_network) for e in mat.events)

    def test_arrivals_fire_before_same_step_churn(self):
        spec = ScenarioSpec(
            name="interleave",
            workload=WorkloadSpec(initial_graphs=1, num_tasks=5, arrivals=((2, 2),)),
            cluster=ClusterSpec(num_devices=6),
            churn=ChurnConfig(min_devices=5, max_devices=6, num_changes=3),
        )
        events = materialize(spec).events
        step2 = [e.kind for e in events if e.step == 2]
        assert step2[:2] == ["arrival", "arrival"]
        assert step2[2] in ("add", "remove")
        # arrivals at a step see the network state before that step's churn
        churn_before = [e for e in events if e.step < 2 and e.is_network_event]
        arrival = next(e for e in events if e.kind == "arrival")
        assert networks_equal(arrival.network, churn_before[-1].network)

    def test_graph_names_are_serial(self):
        mat = materialize(DEFAULT_REGISTRY.get("flash-crowd"))
        names = [g.name for g in mat.initial_graphs] + [
            e.graph.name for e in mat.events if e.kind == "arrival"
        ]
        assert names == [f"flash-crowd-g{i}" for i in range(len(names))]

    def test_describe_events_covers_every_event(self):
        mat = materialize(DEFAULT_REGISTRY.get("mixed-dynamics"))
        lines = describe_events(mat.events)
        assert len(lines) == mat.num_events
        assert any("arrival" in line for line in lines)
