"""ScenarioRunner: replay semantics, determinism, adaptation accounting."""

import dataclasses

import numpy as np
import pytest

from repro.baselines import AdaptivePolicy, RandomPlacementPolicy, RandomTaskEftPolicy
from repro.devices import ChurnConfig
from repro.scenarios import (
    DEFAULT_REGISTRY,
    ClusterSpec,
    RelocationSpec,
    ScenarioRunner,
    ScenarioSpec,
    WorkloadSpec,
    materialize,
)


@pytest.fixture(scope="module")
def small_spec():
    return ScenarioSpec(
        name="unit-small",
        seed=5,
        workload=WorkloadSpec(initial_graphs=2, num_tasks=6, arrivals=((2, 1),)),
        cluster=ClusterSpec(num_devices=6, support_prob=0.8),
        churn=ChurnConfig(
            min_devices=5,
            max_devices=6,
            num_changes=4,
            bandwidth_drift_prob=0.2,
            compute_slowdown_prob=0.2,
        ),
        relocation=RelocationSpec(pipeline_frequency_hz=10.0),
    )


@pytest.fixture(scope="module")
def result(small_spec):
    return ScenarioRunner(small_spec).run(
        {"random": RandomPlacementPolicy(), "task-eft": RandomTaskEftPolicy()}
    )


class TestReplaySemantics:
    def test_one_step_record_per_event(self, small_spec, result):
        num_events = materialize(small_spec).num_events
        for report in result.reports.values():
            assert len(report.steps) == num_events
            assert [s.index for s in report.steps] == list(range(num_events))

    def test_slr_never_below_lower_bound(self, result):
        for report in result.reports.values():
            assert all(s.mean_slr >= 0.99 for s in report.steps)
            assert all(s.oracle_slr >= 0.99 for s in report.steps)

    def test_graph_count_grows_at_arrivals(self, result):
        report = result.reports["random"]
        counts = {s.kind: s.num_graphs for s in report.steps}
        assert counts["arrival"] == 3  # 2 initial + 1 arrived

    def test_migration_accounting_is_consistent(self, result):
        for report in result.reports.values():
            for s in report.steps:
                assert s.migration_cost_ms >= 0
                assert s.migrated_tasks >= 0
                if s.migrated_tasks == 0:
                    assert s.migration_cost_ms == 0
                # spec sets pipeline_frequency_hz=10
                assert s.amortized_migration_ms == pytest.approx(s.migration_cost_ms / 10.0)

    def test_regret_is_slr_minus_oracle(self, result):
        for report in result.reports.values():
            for s in report.steps:
                assert s.regret == pytest.approx(s.mean_slr - s.oracle_slr)

    def test_evaluator_stats_flow_into_report(self, result):
        for report in result.reports.values():
            assert report.evaluator_stats["evaluations"] > 0
            assert any(s.evaluations > 0 for s in report.steps)

    def test_summary_properties(self, result):
        report = result.reports["task-eft"]
        assert report.mean_slr == pytest.approx(np.mean([s.mean_slr for s in report.steps]))
        assert report.total_migrated_tasks == sum(s.migrated_tasks for s in report.steps)

    def test_requires_at_least_one_policy(self, small_spec):
        with pytest.raises(ValueError):
            ScenarioRunner(small_spec).run({})

    def test_disabled_oracle_reports_zero_regret(self, small_spec):
        result = ScenarioRunner(small_spec, oracle=False).run(
            {"task-eft": RandomTaskEftPolicy()}
        )
        for s in result.reports["task-eft"].steps:
            assert s.regret == 0.0 and s.oracle_slr == 0.0

    def test_oracle_series_is_memoized_across_runs(self, small_spec):
        runner = ScenarioRunner(small_spec)
        calls = 0
        original = runner._oracle_slr

        def counting(workers=1, backend=None):
            nonlocal calls
            calls += 1
            return original(workers=workers, backend=backend)

        runner._oracle_slr = counting
        runner.run({"task-eft": RandomTaskEftPolicy()})
        runner.run({"random": RandomPlacementPolicy()})
        assert calls == 1

    def test_oracle_event_unaffected_by_later_arrivals(self, small_spec):
        # An event's oracle SLR is a pure function of that event's
        # identity: graphs arriving at later events must not leak into
        # it.  Consecutive arrivals share (and mutate) one problems list
        # inside _replay_state, so materializing its yields without
        # snapshotting hands earlier arrivals the final grown list —
        # the regression this pins down.
        base = dataclasses.replace(
            small_spec,
            workload=dataclasses.replace(small_spec.workload, arrivals=((1, 1), (2, 1))),
            churn=dataclasses.replace(small_spec.churn, num_changes=0),
        )
        truncated = dataclasses.replace(
            base, workload=dataclasses.replace(base.workload, arrivals=((1, 1),))
        )
        full_series = ScenarioRunner(base)._oracle_slr()
        truncated_series = ScenarioRunner(truncated)._oracle_slr()
        assert len(full_series) == 2 and len(truncated_series) == 1
        assert full_series[0] == truncated_series[0]


class TestDeterminism:
    def test_same_seed_bit_identical_reports(self, small_spec, result):
        again = ScenarioRunner(small_spec).run(
            {"random": RandomPlacementPolicy(), "task-eft": RandomTaskEftPolicy()}
        )
        for name in result.reports:
            assert again.reports[name].as_dict() == result.reports[name].as_dict()

    def test_report_independent_of_other_policies(self, small_spec, result):
        alone = ScenarioRunner(small_spec).run({"task-eft": RandomTaskEftPolicy()})
        assert alone.reports["task-eft"].as_dict() == result.reports["task-eft"].as_dict()

    def test_different_seed_changes_reports(self, small_spec, result):
        reseeded = dataclasses.replace(small_spec, seed=6)
        other = ScenarioRunner(reseeded).run({"task-eft": RandomTaskEftPolicy()})
        assert other.reports["task-eft"].as_dict() != result.reports["task-eft"].as_dict()

    def test_as_dict_hides_timing_by_default(self, result):
        report = result.reports["random"]
        plain = report.as_dict()
        assert "replace_seconds" not in plain["steps"][0]
        timed = report.as_dict(include_timing=True)
        assert "replace_seconds" in timed["steps"][0]

    def test_cold_evaluators_reproduce_the_same_values(self, small_spec, result):
        """Evaluator reuse is a pure optimization: values must not change."""
        cold = ScenarioRunner(small_spec, reuse_evaluators=False).run(
            {"task-eft": RandomTaskEftPolicy()}
        )
        warm_steps = result.reports["task-eft"].as_dict()["steps"]
        cold_steps = cold.reports["task-eft"].as_dict()["steps"]
        for warm, cold_step in zip(warm_steps, cold_steps):
            for field in ("mean_value", "mean_slr", "migrated_tasks", "migration_cost_ms"):
                assert warm[field] == pytest.approx(cold_step[field])


class TestAdaptHook:
    def test_policies_receive_every_event(self, small_spec):
        seen = []

        class Recorder(AdaptivePolicy):
            name = "recorder"

            def adapt(self, event):
                seen.append((event.index, event.kind))

            def search(self, problem, objective, initial_placement, episode_length, rng, evaluator=None):
                return RandomPlacementPolicy().search(
                    problem, objective, initial_placement, episode_length, rng, evaluator
                )

        mat = materialize(small_spec)
        ScenarioRunner(mat).run({"recorder": Recorder()})
        assert seen == [(e.index, e.kind) for e in mat.events]

    def test_single_policy_stays_direct_at_any_worker_count(self, small_spec):
        # Regression (backend refactor): `workers > 1` with one policy
        # has nothing to fan out, so the replay must stay on the direct
        # path — locally-defined (non-picklable) policies keep working
        # and adapt() side effects stay caller-visible.
        seen = []

        class Local(AdaptivePolicy):
            name = "local"

            def adapt(self, event):
                seen.append(event.index)

            def search(self, problem, objective, initial_placement, episode_length, rng, evaluator=None):
                return RandomPlacementPolicy().search(
                    problem, objective, initial_placement, episode_length, rng, evaluator
                )

        result = ScenarioRunner(small_spec).run({"local": Local()}, workers=4)
        assert "local" in result.reports
        assert seen  # adapt() mutations landed on the caller's object

    def test_default_adapt_is_noop(self):
        assert RandomPlacementPolicy().adapt(object()) is None


class TestPresetAcceptance:
    """Acceptance criterion: every preset replays with both policies."""

    @pytest.mark.slow
    @pytest.mark.parametrize("name", DEFAULT_REGISTRY.names())
    def test_preset_end_to_end(self, name):
        spec = DEFAULT_REGISTRY.get(name)
        mat = materialize(spec)
        result = ScenarioRunner(mat).run(
            {"random": RandomPlacementPolicy(), "task-eft": RandomTaskEftPolicy()}
        )
        for report in result.reports.values():
            assert len(report.steps) == mat.num_events
            assert all(np.isfinite(s.mean_slr) and s.mean_slr >= 0.99 for s in report.steps)
            assert all(s.migration_cost_ms >= 0 for s in report.steps)
        # determinism across replays, per preset
        again = ScenarioRunner(mat).run({"task-eft": RandomTaskEftPolicy()})
        assert again.reports["task-eft"].as_dict() == result.reports["task-eft"].as_dict()
