"""ScenarioSpec validation, serialization round-trip, and the registry."""

import dataclasses
import json

import pytest

from repro.devices import ChurnConfig
from repro.scenarios import (
    DEFAULT_REGISTRY,
    ClusterSpec,
    RelocationSpec,
    ScenarioRegistry,
    ScenarioSpec,
    WorkloadSpec,
    default_registry,
)


class TestValidation:
    def test_workload_rejects_bad_arrivals(self):
        with pytest.raises(ValueError, match="1-based"):
            WorkloadSpec(arrivals=((0, 1),))
        with pytest.raises(ValueError, match="counts"):
            WorkloadSpec(arrivals=((2, 0),))

    def test_workload_arrival_totals(self):
        w = WorkloadSpec(arrivals=((2, 3), (5, 1)))
        assert w.total_arrivals == 4 and w.last_arrival_step == 5

    def test_cluster_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_devices=0)
        with pytest.raises(ValueError):
            ClusterSpec(support_prob=1.5)

    def test_relocation_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            RelocationSpec(migration_bytes=-1.0)
        with pytest.raises(ValueError):
            RelocationSpec(pipeline_frequency_hz=0.0)

    def test_spec_rejects_unknown_objective(self):
        with pytest.raises(ValueError, match="objective"):
            ScenarioSpec(name="x", objective="latency")

    def test_spec_rejects_oversized_churn(self):
        with pytest.raises(ValueError, match="cluster size"):
            ScenarioSpec(
                name="x",
                cluster=ClusterSpec(num_devices=4),
                churn=ChurnConfig(min_devices=4, max_devices=8),
            )

    def test_num_steps_covers_late_arrivals(self):
        spec = ScenarioSpec(
            name="x",
            workload=WorkloadSpec(arrivals=((9, 1),)),
            cluster=ClusterSpec(num_devices=10),
            churn=ChurnConfig(min_devices=8, max_devices=10, num_changes=4),
        )
        assert spec.num_steps == 9


class TestSerialization:
    @pytest.mark.parametrize("name", DEFAULT_REGISTRY.names())
    def test_every_preset_round_trips_through_json(self, name):
        spec = DEFAULT_REGISTRY.get(name)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_round_trip_preserves_soft_event_config(self):
        spec = ScenarioSpec(
            name="drifty",
            seed=3,
            objective="total-cost",
            workload=WorkloadSpec(arrivals=((2, 2),)),
            churn=ChurnConfig(
                min_devices=8,
                max_devices=10,
                bandwidth_drift_prob=0.4,
                compute_slowdown_prob=0.2,
                drift_range=(0.4, 0.8),
                target="fastest",
            ),
            relocation=RelocationSpec(pipeline_frequency_hz=5.0),
        )
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert isinstance(again.workload.arrivals[0], tuple)
        assert isinstance(again.churn.drift_range, tuple)

    def test_from_dict_validates(self):
        payload = DEFAULT_REGISTRY.get("edge-churn").to_dict()
        payload["objective"] = "nonsense"
        with pytest.raises(ValueError):
            ScenarioSpec.from_dict(payload)

    def test_make_objective_matches_name(self):
        from repro.sim import EnergyObjective, MakespanObjective, TotalCostObjective

        assert isinstance(
            dataclasses.replace(DEFAULT_REGISTRY.get("edge-churn"), objective="energy")
            .make_objective(),
            EnergyObjective,
        )
        assert isinstance(DEFAULT_REGISTRY.get("edge-churn").make_objective(), MakespanObjective)
        assert isinstance(
            dataclasses.replace(DEFAULT_REGISTRY.get("edge-churn"), objective="total-cost")
            .make_objective(),
            TotalCostObjective,
        )


class TestRegistry:
    def test_default_registry_has_the_documented_presets(self):
        expected = {
            "stable-cluster",
            "edge-churn",
            "bandwidth-degradation",
            "compute-brownout",
            "flash-crowd",
            "traffic-casestudy",
            "adversarial-hot-device",
            "mixed-dynamics",
        }
        assert set(DEFAULT_REGISTRY.names()) == expected
        assert len(DEFAULT_REGISTRY) == 8

    def test_get_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="edge-churn"):
            DEFAULT_REGISTRY.get("nope")

    def test_get_with_seed_returns_reseeded_copy(self):
        spec = DEFAULT_REGISTRY.get("edge-churn", seed=42)
        assert spec.seed == 42
        assert DEFAULT_REGISTRY.get("edge-churn").seed != 42 or True
        assert DEFAULT_REGISTRY.get("edge-churn") is not spec

    def test_register_refuses_silent_overwrite(self):
        registry = ScenarioRegistry()
        spec = DEFAULT_REGISTRY.get("edge-churn")
        registry.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(spec)
        registry.register(dataclasses.replace(spec, seed=9), replace=True)
        assert registry.get("edge-churn").seed == 9

    def test_default_registry_factory_returns_fresh_copies(self):
        a, b = default_registry(), default_registry()
        assert a is not b and a.names() == b.names()

    def test_iteration_is_sorted(self):
        assert [s.name for s in DEFAULT_REGISTRY] == DEFAULT_REGISTRY.names()
