"""Shared serve-test plumbing: short socket paths and a live daemon.

AF_UNIX socket paths are capped around 100 chars, and pytest's
``tmp_path`` can blow past that on deep test names — sockets go in a
dedicated short tempdir instead.
"""

import pathlib
import tempfile

import pytest


@pytest.fixture()
def socket_path():
    with tempfile.TemporaryDirectory(prefix="repro-serve-", dir="/tmp") as tmp:
        yield str(pathlib.Path(tmp) / "serve.sock")


@pytest.fixture()
def server(socket_path):
    from repro.serve.server import PlacementServer, ServeConfig

    server = PlacementServer(ServeConfig(socket_path=socket_path))
    server.start()
    yield server
    server.stop()
