"""RequestBatcher: coalescing, value fidelity, and error propagation."""

import threading

import pytest

from repro.core.placement import PlacementProblem
from repro.runtime.evaluator import (
    EvaluatorPool,
    PlacementEvaluator,
    coalesce_evaluate,
)
from repro.scenarios import DEFAULT_REGISTRY, materialize
from repro.serve.batcher import RequestBatcher


@pytest.fixture(scope="module")
def problem():
    mat = materialize(DEFAULT_REGISTRY.get("stable-cluster", seed=0))
    return PlacementProblem(mat.initial_graphs[0], mat.initial_network)


@pytest.fixture(scope="module")
def objective():
    return DEFAULT_REGISTRY.get("stable-cluster", seed=0).make_objective()


def placements_for(problem, count):
    sets = problem.feasible_sets
    return [
        tuple(s[(i + rank) % len(s)] for i, s in enumerate(sets))
        for rank in range(count)
    ]


class TestCoalesce:
    def test_groups_by_evaluator_and_preserves_order(self, problem, objective):
        ev_a = PlacementEvaluator(problem, objective)
        ev_b = PlacementEvaluator(problem, objective)
        ps = placements_for(problem, 4)
        requests = [(ev_a, ps[0]), (ev_b, ps[1]), (ev_a, ps[2]), (ev_b, ps[3])]
        values = coalesce_evaluate(requests)
        direct = [float(ev.evaluate(p)) for ev, p in requests]
        assert values == direct

    def test_empty_input(self):
        assert coalesce_evaluate([]) == []


class TestBatcher:
    def test_values_match_direct_evaluation(self, problem, objective):
        reference = PlacementEvaluator(problem, objective)
        ps = placements_for(problem, 6)
        expected = [float(reference.evaluate(p)) for p in ps]
        served = PlacementEvaluator(problem, objective)
        with RequestBatcher(max_wait_ms=1.0) as batcher:
            values = batcher.submit_many(served, ps)
        assert values == expected

    def test_concurrent_submitters_coalesce(self, problem, objective):
        evaluator = PlacementEvaluator(problem, objective)
        reference = PlacementEvaluator(problem, objective)
        ps = placements_for(problem, 8)
        expected = {p: float(reference.evaluate(p)) for p in ps}
        results = {}
        lock = threading.Lock()
        with RequestBatcher(max_wait_ms=20.0) as batcher:
            barrier = threading.Barrier(len(ps))

            def submit(p):
                barrier.wait()
                value = batcher.submit(evaluator, p)
                with lock:
                    results[p] = value

            threads = [threading.Thread(target=submit, args=(p,)) for p in ps]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert results == expected
            # the linger window must have merged at least some requests
            assert batcher.batches < batcher.requests

    def test_evaluation_error_reaches_submitter(self, problem, objective):
        evaluator = PlacementEvaluator(problem, objective)
        bad = (0,) * (len(problem.feasible_sets) + 1)  # wrong length
        with RequestBatcher(max_wait_ms=1.0) as batcher:
            with pytest.raises(ValueError):
                batcher.submit(evaluator, bad)
            # the batcher survives a poisoned batch
            good = placements_for(problem, 1)[0]
            assert batcher.submit(evaluator, good) == float(
                PlacementEvaluator(problem, objective).evaluate(good)
            )

    def test_stop_finishes_queued_work(self, problem, objective):
        evaluator = PlacementEvaluator(problem, objective)
        batcher = RequestBatcher(max_wait_ms=50.0)
        batcher.start()
        ps = placements_for(problem, 3)
        holder = {}

        def submit():
            holder["values"] = batcher.submit_many(evaluator, ps)

        thread = threading.Thread(target=submit)
        thread.start()
        batcher.stop()
        thread.join(timeout=30)
        assert not thread.is_alive()
        reference = PlacementEvaluator(problem, objective)
        assert holder["values"] == [float(reference.evaluate(p)) for p in ps]

    def test_shares_pool_cache_across_batches(self, problem, objective):
        pool = EvaluatorPool(objective)
        evaluator = pool.get(problem)
        ps = placements_for(problem, 2)
        with RequestBatcher(max_wait_ms=1.0) as batcher:
            batcher.submit_many(evaluator, ps)
            batcher.submit_many(evaluator, ps)  # second pass: warm cache
        assert evaluator.stats.cache_hits >= len(ps)
