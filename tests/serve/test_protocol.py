"""JSON-lines wire format: canonical encoding and defensive decoding."""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)


class TestEncode:
    def test_round_trip(self):
        message = {"op": "open", "scenario": "edge-churn", "seed": 3}
        assert decode_message(encode_message(message)) == message

    def test_one_line_canonical_bytes(self):
        raw = encode_message({"b": 1, "a": [2, 3]})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        # sorted keys, no whitespace: stable bytes for framing and diffing
        assert raw == b'{"a":[2,3],"b":1}\n'

    def test_responses_echo_request_id(self):
        request = {"op": "ping", "id": "r7"}
        assert ok_response("ping", request)["id"] == "r7"
        assert error_response("ping", "nope", request)["id"] == "r7"
        assert error_response("ping", "nope", request)["ok"] is False

    def test_version_and_ops_stable(self):
        assert PROTOCOL_VERSION == 1
        for op in ("open", "event", "report", "close", "evaluate"):
            assert op in OPS


class TestDecode:
    def test_rejects_bad_json(self):
        with pytest.raises(ProtocolError):
            decode_message(b"{not json}\n")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_message(json.dumps([1, 2]).encode())

    def test_rejects_empty(self):
        with pytest.raises(ProtocolError):
            decode_message(b"")

    def test_accepts_str_input(self):
        assert decode_message('{"op":"ping"}') == {"op": "ping"}
