"""Daemon equivalence and request semantics over the wire.

The acceptance bar for placement-as-a-service: replaying scenario
presets through the daemon — at client concurrency 1 and 4 — produces
AdaptationReports byte-identical to the in-process ScenarioRunner.
"""

import json
import threading

import pytest

from repro.baselines import RandomTaskEftPolicy
from repro.core.placement import PlacementProblem
from repro.runtime.evaluator import PlacementEvaluator
from repro.scenarios import DEFAULT_REGISTRY, ScenarioRunner, materialize
from repro.serve.client import ServeClient, ServeRequestError

PRESETS = ["stable-cluster", "edge-churn", "bandwidth-degradation"]
SEED = 3


def canonical(report_dict):
    return json.dumps(report_dict, sort_keys=True)


@pytest.fixture(scope="module")
def references():
    out = {}
    for name in PRESETS:
        spec = DEFAULT_REGISTRY.get(name, seed=SEED)
        result = ScenarioRunner(spec).run({"task-eft": RandomTaskEftPolicy()})
        out[name] = canonical(result.reports["task-eft"].as_dict(include_timing=False))
    return out


def replay_through_daemon(socket_path, preset):
    """One tenant: open, drain every event, fetch the canonical report."""
    with ServeClient(socket_path) as client:
        opened = client.open_session(preset, policy="task-eft", seed=SEED, oracle=True)
        session = opened["session"]
        remaining = int(opened["events"])
        while remaining:
            remaining = int(client.event(session)["remaining"])
        report = client.report(session, include_timing=False)["report"]
        client.close_session(session)
    return canonical(report)


class TestEquivalence:
    def test_serial_replay_matches_runner(self, server, socket_path, references):
        for preset in PRESETS:
            assert replay_through_daemon(socket_path, preset) == references[preset]

    def test_concurrent_replay_matches_runner(self, server, socket_path, references):
        jobs = PRESETS + [PRESETS[0]]  # 4 concurrent tenants
        results = [None] * len(jobs)
        errors = []

        def tenant(i, preset):
            try:
                results[i] = replay_through_daemon(socket_path, preset)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=tenant, args=(i, preset))
            for i, preset in enumerate(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for preset, got in zip(jobs, results):
            assert got == references[preset]


class TestRequestSemantics:
    def test_ping_reports_protocol(self, server, socket_path):
        with ServeClient(socket_path) as client:
            pong = client.ping()
        assert pong["protocol"] == 1 and pong["pid"] > 0

    def test_evaluate_matches_in_process(self, server, socket_path):
        spec = DEFAULT_REGISTRY.get("stable-cluster", seed=0)
        mat = materialize(spec)
        problem = PlacementProblem(mat.initial_graphs[0], mat.initial_network)
        sets = problem.feasible_sets
        p0 = [s[0] for s in sets]
        p1 = [s[-1] for s in sets]
        evaluator = PlacementEvaluator(problem, spec.make_objective())
        expected = [float(evaluator.evaluate(tuple(p0))), float(evaluator.evaluate(tuple(p1)))]
        with ServeClient(socket_path) as client:
            values = client.evaluate("stable-cluster", [p0, p1, p0], seed=0)
        assert values == [expected[0], expected[1], expected[0]]

    def test_unknown_op_rejected(self, server, socket_path):
        with ServeClient(socket_path) as client:
            with pytest.raises(ServeRequestError):
                client.request("teleport")

    def test_unknown_scenario_and_policy_rejected(self, server, socket_path):
        with ServeClient(socket_path) as client:
            with pytest.raises(ServeRequestError):
                client.open_session("no-such-preset")
            with pytest.raises(ServeRequestError):
                client.open_session("stable-cluster", policy="no-such-policy")

    def test_event_on_unknown_session_rejected(self, server, socket_path):
        with ServeClient(socket_path) as client:
            with pytest.raises(ServeRequestError):
                client.event("s999")

    def test_event_past_end_rejected(self, server, socket_path):
        with ServeClient(socket_path) as client:
            opened = client.open_session(
                "stable-cluster", seed=0, oracle=False, max_events=1
            )
            session = opened["session"]
            assert opened["events"] == 1
            assert client.event(session)["remaining"] == 0
            with pytest.raises(ServeRequestError):
                client.event(session)

    def test_malformed_line_gets_error_not_disconnect(self, server, socket_path):
        import socket as socket_mod

        sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
        sock.connect(socket_path)
        sock.settimeout(30)
        try:
            sock.sendall(b"{this is not json}\n")
            data = b""
            while not data.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
            response = json.loads(data)
            assert response["ok"] is False and "error" in response
        finally:
            sock.close()

    def test_stats_counts_requests(self, server, socket_path):
        with ServeClient(socket_path) as client:
            client.ping()
            stats = client.stats()
        assert stats["requests"] >= 1
        assert "batched_requests" in stats and "latency_ms" in stats

    def test_sessions_isolated_by_id(self, server, socket_path):
        with ServeClient(socket_path) as client:
            a = client.open_session("stable-cluster", seed=0, oracle=False)["session"]
            b = client.open_session("stable-cluster", seed=0, oracle=False)["session"]
            assert a != b
            first = client.event(a)["record"]
            second = client.event(b)["record"]
            first.pop("replace_seconds"), second.pop("replace_seconds")
            assert first == second  # same preset+seed: same placement outcome
            client.close_session(a)
            client.close_session(b)
            with pytest.raises(ServeRequestError):
                client.event(a)
