"""PlacementSession: the request-sized unit carved out of ScenarioRunner.

The tentpole invariant: driving a session event by event (the daemon's
access pattern, with the oracle computed lazily per event) must produce
an AdaptationReport byte-identical to the batch ScenarioRunner replay
(which precomputes the oracle series up front).
"""

import json

import pytest

from repro.baselines import RandomTaskEftPolicy
from repro.scenarios import DEFAULT_REGISTRY, ScenarioRunner
from repro.serve.session import PlacementSession

PRESETS = ["stable-cluster", "edge-churn", "bandwidth-degradation"]


def canonical(report_dict):
    return json.dumps(report_dict, sort_keys=True)


@pytest.fixture(scope="module")
def references():
    out = {}
    for name in PRESETS:
        spec = DEFAULT_REGISTRY.get(name, seed=3)
        result = ScenarioRunner(spec).run({"task-eft": RandomTaskEftPolicy()})
        out[name] = result.reports["task-eft"].as_dict(include_timing=False)
    return out


class TestEquivalence:
    @pytest.mark.parametrize("preset", PRESETS)
    def test_stepwise_replay_matches_runner(self, preset, references):
        spec = DEFAULT_REGISTRY.get(preset, seed=3)
        session = PlacementSession(spec, "task-eft", RandomTaskEftPolicy())
        while session.remaining:
            session.step()
        got = session.report().as_dict(include_timing=False)
        assert canonical(got) == canonical(references[preset])

    def test_run_matches_stepwise(self):
        spec = DEFAULT_REGISTRY.get("edge-churn", seed=7)
        stepped = PlacementSession(spec, "task-eft", RandomTaskEftPolicy())
        while stepped.remaining:
            stepped.step()
        ran = PlacementSession(spec, "task-eft", RandomTaskEftPolicy()).run()
        assert canonical(ran.as_dict(include_timing=False)) == canonical(
            stepped.report().as_dict(include_timing=False)
        )

    def test_oracle_off_reports_zero_regret(self):
        spec = DEFAULT_REGISTRY.get("stable-cluster", seed=0)
        session = PlacementSession(
            spec, "task-eft", RandomTaskEftPolicy(), oracle=False
        )
        report = session.run()
        assert all(step.oracle_slr == 0.0 for step in report.steps)

    def test_precomputed_oracle_series_is_honoured(self, references):
        spec = DEFAULT_REGISTRY.get("edge-churn", seed=3)
        series = [row["oracle_slr"] for row in references["edge-churn"]["steps"]]
        session = PlacementSession(
            spec, "task-eft", RandomTaskEftPolicy(), oracle_slr=series
        )
        got = session.run().as_dict(include_timing=False)
        assert canonical(got) == canonical(references["edge-churn"])


class TestStepSemantics:
    def test_event_accounting(self):
        spec = DEFAULT_REGISTRY.get("stable-cluster", seed=0)
        session = PlacementSession(spec, "task-eft", RandomTaskEftPolicy())
        total = session.num_events
        assert total > 0 and session.events_consumed == 0
        records = []
        while session.remaining:
            records.append(session.step())
        assert session.events_consumed == total == len(records)
        assert [r.index for r in records] == list(range(total))

    def test_step_past_end_raises(self):
        spec = DEFAULT_REGISTRY.get("stable-cluster", seed=0)
        session = PlacementSession(spec, "task-eft", RandomTaskEftPolicy())
        session.run()
        with pytest.raises(StopIteration):
            session.step()

    def test_report_is_idempotent(self):
        spec = DEFAULT_REGISTRY.get("stable-cluster", seed=0)
        session = PlacementSession(spec, "task-eft", RandomTaskEftPolicy())
        session.run()
        first = session.report().as_dict(include_timing=False)
        second = session.report().as_dict(include_timing=False)
        assert canonical(first) == canonical(second)

    def test_rejects_bad_episode_multiplier(self):
        spec = DEFAULT_REGISTRY.get("stable-cluster", seed=0)
        with pytest.raises(ValueError):
            PlacementSession(
                spec, "task-eft", RandomTaskEftPolicy(), episode_multiplier=0
            )
