"""Graceful shutdown: a real ``repro serve`` process under SIGTERM/SIGINT.

The daemon must drain in-flight requests, flush its telemetry run log,
and exit 0 — and the flushed log must let ``repro trace`` group spans
per request under ``serve.request`` (not one flat run root).
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro.serve.client import ServeClient

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def start_daemon(tmp):
    socket_path = str(pathlib.Path(tmp) / "serve.sock")
    trace_path = str(pathlib.Path(tmp) / "serve-trace.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", socket_path, "--trace-log", trace_path],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return process, socket_path, trace_path


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_and_exits_zero(signum):
    with tempfile.TemporaryDirectory(prefix="repro-serve-", dir="/tmp") as tmp:
        process, socket_path, trace_path = start_daemon(tmp)
        try:
            with ServeClient(socket_path, connect_retry_s=30.0) as client:
                opened = client.open_session(
                    "stable-cluster", seed=0, oracle=False, max_events=2
                )
                session = opened["session"]
                client.event(session)
                # put a request on the wire BEFORE the signal: it is
                # in-flight when the drain starts and must still be served
                from repro.serve.protocol import encode_message

                client._sock.sendall(
                    encode_message({"op": "event", "session": session})
                )
                process.send_signal(signum)
                response = json.loads(client._readline())
                assert response["ok"] is True and response["remaining"] == 0
            rc = process.wait(timeout=60)
            output = process.stdout.read()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert rc == 0, output
        assert "draining" in output and "drained and stopped" in output

        # the flushed run log exists and groups spans per request (the
        # `repro trace` fix: serve.request is the per-request root)
        log_path = pathlib.Path(trace_path)
        assert log_path.exists()
        records = [
            json.loads(line) for line in log_path.read_text().splitlines() if line
        ]
        kinds = {record.get("kind") for record in records}
        assert "run" in kinds and "span" in kinds
        span_paths = {
            record["path"] for record in records if record.get("kind") == "span"
        }
        assert "serve.request" in span_paths
        assert any(path.startswith("serve.request/serve.") for path in span_paths)
        assert any("serve.request/serve.event/serve.search" in p for p in span_paths)


def test_stale_socket_is_replaced():
    with tempfile.TemporaryDirectory(prefix="repro-serve-", dir="/tmp") as tmp:
        process, socket_path, _ = start_daemon(tmp)
        try:
            with ServeClient(socket_path, connect_retry_s=30.0) as client:
                assert client.ping()["ok"] is True
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
            # leave a stale socket file behind, then restart over it
            pathlib.Path(socket_path).touch()
            process, socket_path, _ = start_daemon(tmp)
            with ServeClient(socket_path, connect_retry_s=30.0) as client:
                assert client.ping()["ok"] is True
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
