"""Shard orchestration: plan / run / merge equivalence and guard rails.

The acceptance bar of the sharding tentpole: for every parallel
experiment in the registry, ``plan`` + N x ``run`` + ``merge`` produces
report JSON byte-identical to the fork-backend single-host run, for
shard counts {1, 2, 3}.

Runs at a micro scale by default so the tier-1 suite stays fast; the CI
sharded-equivalence job re-runs it with ``REPRO_SHARD_SCALE=quick`` for
the full QUICK-scale guarantee.  All three plans of an experiment share
one store on purpose — cells are addressed by (run, site, cell), never
by shard count, which is exactly why any shard count merges identically.
"""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.experiments import QUICK
from repro.experiments.registry import get_module, parallel_experiment_ids
from repro.parallel import ForkBackend, MissingCellError
from repro.shard import StaleManifestError, merge_shards, plan, run_shard

MICRO = dataclasses.replace(
    QUICK,
    name="shard-micro",
    num_tasks=5,
    num_devices=3,
    train_graphs=2,
    test_cases=2,
    episodes=2,
    num_networks=2,
    dl_designs=1,
    dl_variants=2,
    dl_group_target=12,
    dl_devices=3,
    dl_episodes=2,
    dl_test_cases=1,
    adapt_devices=6,
    adapt_min_devices=5,
    adapt_changes=2,
    adapt_graphs=2,
    case_vehicles=200,
    case_duration_s=60.0,
    case_cav_fraction=0.3,
    case_train=3,
    case_test=2,
    case_episodes=2,
    convergence_episodes=2,
    convergence_eval_every=1,
    convergence_eval_cases=1,
    pairwise_cases=3,
)


def active_scale():
    """Micro by default; QUICK when the CI equivalence job asks for it."""
    return QUICK if os.environ.get("REPRO_SHARD_SCALE") == "quick" else MICRO


@pytest.mark.parametrize("experiment_id", parallel_experiment_ids())
def test_shard_count_independence(experiment_id, tmp_path):
    """{1, 2, 3} shards all merge byte-identically to the fork run."""
    scale = active_scale()
    baseline = get_module(experiment_id).run(scale, seed=0, backend=ForkBackend(2))
    expected = baseline.to_json()
    store = str(tmp_path / "store")
    for shards in (1, 2, 3):
        out = tmp_path / f"plan-{shards}"
        for manifest in plan(experiment_id, shards, 0, scale, out, store=store):
            run_shard(manifest)
        merged = merge_shards([out])
        assert merged.to_json() == expected, (experiment_id, shards)


def test_concurrent_wait_shards_partition_the_work(tmp_path):
    """Two `missing=wait` shard processes complete against one store.

    The two-terminal mode: each process computes only its owned cells
    and polls the store for the peer's — neither can finish alone, so
    both exiting 0 proves the cross-process exchange works, and the
    merge proves the split changed nothing.
    """
    scale = active_scale()
    expected = get_module("fig15").run(scale, seed=0).to_json()
    out = tmp_path / "plan"
    manifests = plan("fig15", 2, 0, scale, out)
    code = (
        "import sys; from repro.shard import run_shard; "
        "run_shard(sys.argv[1], missing='wait', wait_timeout_s=120)"
    )
    env = {**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)}
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", code, str(path)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        for path in manifests
    ]
    for proc in procs:
        _, err = proc.communicate(timeout=240)
        assert proc.returncode == 0, err.decode()
    assert merge_shards([out]).to_json() == expected


class TestGuards:
    def test_merge_without_runs_reports_missing_cells(self, tmp_path):
        out = tmp_path / "plan"
        plan("fig15", 2, 0, active_scale(), out)
        with pytest.raises(MissingCellError, match="did every `repro shard run`"):
            merge_shards([out])

    def test_stale_code_fingerprint_fails_cleanly(self, tmp_path):
        # A manifest planned under different repro sources must be
        # rejected before any store access — not silently corrupt the
        # merge with cells from another code version.
        out = tmp_path / "plan"
        manifest = plan("fig15", 1, 0, active_scale(), out)[0]
        payload = json.loads(manifest.read_text())
        payload["fingerprint"]["code"] = "0" * 64
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StaleManifestError, match="code fingerprint"):
            run_shard(manifest)
        with pytest.raises(StaleManifestError, match="code fingerprint"):
            merge_shards([manifest])

    def test_edited_config_fails_cleanly(self, tmp_path):
        # Changing the planned seed/scale without re-planning is the
        # other stale shape: contents no longer match the config print.
        out = tmp_path / "plan"
        manifest = plan("fig15", 1, 0, active_scale(), out)[0]
        payload = json.loads(manifest.read_text())
        payload["seed"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(StaleManifestError, match="edited inconsistently"):
            run_shard(manifest)

    def test_merge_rejects_mixed_plans(self, tmp_path):
        scale = active_scale()
        a = plan("fig15", 1, 0, scale, tmp_path / "a")[0]
        b = plan("fig15", 1, 1, scale, tmp_path / "b")[0]
        with pytest.raises(StaleManifestError, match="one plan at a time"):
            merge_shards([a, b])

    def test_plan_rejects_serial_experiments(self, tmp_path):
        with pytest.raises(ValueError, match="serially by design"):
            plan("table1", 2, 0, active_scale(), tmp_path)

    def test_plan_rejects_bad_shard_count(self, tmp_path):
        with pytest.raises(ValueError, match="num_shards"):
            plan("fig15", 0, 0, active_scale(), tmp_path)
