"""Discrete-event engine tests."""

import pytest

from repro.sim import Simulation


class TestSimulation:
    def test_events_run_in_time_order(self):
        sim = Simulation()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        assert sim.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_fifo_tie_breaking(self):
        sim = Simulation()
        log = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_callbacks_can_schedule(self):
        sim = Simulation()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(2.5, lambda: log.append(sim.now))

        sim.schedule(1.0, first)
        assert sim.run() == 3.5
        assert log == [1.0, 3.5]

    def test_schedule_at_absolute(self):
        sim = Simulation()
        times = []
        sim.schedule_at(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulation().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulation()
        sim.schedule(2.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_until_stops_early(self):
        sim = Simulation()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]

    def test_runaway_loop_guard(self):
        sim = Simulation()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError, match="events"):
            sim.run(max_events=100)

    def test_empty_run(self):
        assert Simulation().run() == 0.0
