"""Runtime simulator conformance tests against Appendix B.5's model.

Hand-computed timelines for small instances, plus property tests of the
model's invariants (precedence, non-preemption, FIFO order).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import Device, DeviceNetwork
from repro.graphs import TaskGraph, TaskGraphParams, generate_task_graph
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.sim import CostModel, simulate


def two_device_net(speeds=(1.0, 2.0), bw=10.0, delay=1.0) -> DeviceNetwork:
    devices = [Device(uid=i, speed=s) for i, s in enumerate(speeds)]
    bwm = np.full((2, 2), bw)
    np.fill_diagonal(bwm, np.inf)
    dlm = np.full((2, 2), delay)
    np.fill_diagonal(dlm, 0.0)
    return DeviceNetwork(devices, bwm, dlm)


class TestHandComputedTimelines:
    def test_chain_two_devices(self):
        # 0 (C=2) on d0 (sp=1) -> w=2; edge B=10, bw=10, delay=1 -> c=2;
        # 1 (C=4) on d1 (sp=2) -> w=2.  Makespan = 2 + 2 + 2 = 6.
        g = TaskGraph((2.0, 4.0), {(0, 1): 10.0})
        net = two_device_net()
        res = simulate(g, net, [0, 1])
        assert res.makespan == pytest.approx(6.0)
        assert res.start[0] == 0.0 and res.finish[0] == pytest.approx(2.0)
        assert res.arrival[(0, 1)] == pytest.approx(4.0)
        assert res.start[1] == pytest.approx(4.0)

    def test_colocated_chain_has_zero_comm(self):
        g = TaskGraph((2.0, 4.0), {(0, 1): 10.0})
        net = two_device_net()
        res = simulate(g, net, [0, 0])
        # w0=2, comm=0, w1=4 -> makespan 6 on the slow device
        assert res.makespan == pytest.approx(6.0)
        assert res.arrival[(0, 1)] == pytest.approx(2.0)

    def test_parallel_tasks_on_one_device_serialize(self):
        # Fork 0 -> {1, 2}; both children on same device run back-to-back.
        g = TaskGraph((1.0, 3.0, 3.0), {(0, 1): 0.0, (0, 2): 0.0})
        net = two_device_net(speeds=(1.0, 1.0))
        res = simulate(g, net, [0, 0, 0])
        assert res.makespan == pytest.approx(1.0 + 3.0 + 3.0)
        # Non-overlap on the device:
        assert res.start[2] >= res.finish[1] or res.start[1] >= res.finish[2]

    def test_parallel_tasks_on_two_devices_overlap(self):
        g = TaskGraph((1.0, 3.0, 3.0), {(0, 1): 0.0, (0, 2): 0.0})
        net = two_device_net(speeds=(1.0, 1.0), delay=0.0)
        res = simulate(g, net, [0, 0, 1])
        assert res.makespan == pytest.approx(4.0)

    def test_join_waits_for_all_parents(self):
        # 0 -> 2 and 1 -> 2; parent 1 is slow, so 2 starts after it.
        g = TaskGraph((1.0, 5.0, 1.0), {(0, 2): 0.0, (1, 2): 0.0})
        net = two_device_net(speeds=(1.0, 1.0), delay=0.0)
        res = simulate(g, net, [0, 1, 0])
        assert res.start[2] == pytest.approx(5.0)

    def test_communication_overlaps_computation(self):
        # 0 on d0 sends to 1 (d1) while 2 runs on d0: d0 is busy during
        # the transfer, demonstrating comm/compute overlap.
        g = TaskGraph((1.0, 1.0, 10.0), {(0, 1): 100.0, (0, 2): 0.0})
        net = two_device_net(speeds=(1.0, 1.0), bw=10.0, delay=0.0)
        res = simulate(g, net, [0, 1, 0])
        # Transfer takes 10; task 2 runs 1..11 on d0 concurrently.
        assert res.start[1] == pytest.approx(11.0)
        assert res.start[2] == pytest.approx(1.0)
        assert res.makespan == pytest.approx(12.0)

    def test_compute_speed_scales_time(self):
        g = TaskGraph((6.0,), {})
        net = two_device_net(speeds=(2.0, 3.0))
        assert simulate(g, net, [0]).makespan == pytest.approx(3.0)
        assert simulate(g, net, [1]).makespan == pytest.approx(2.0)

    def test_fifo_order_preserved(self):
        # Diamond: 1 ready before 2 (shorter comm); device runs 1 first.
        g = TaskGraph((1.0, 2.0, 2.0, 1.0), {(0, 1): 0.0, (0, 2): 50.0, (1, 3): 0.0, (2, 3): 0.0})
        net = two_device_net(speeds=(1.0, 1.0), bw=10.0, delay=0.0)
        res = simulate(g, net, [1, 0, 0, 0])
        assert res.execution_order(0) == [1, 2, 3]


class TestValidation:
    def test_placement_length(self):
        g = TaskGraph((1.0, 1.0), {(0, 1): 1.0})
        with pytest.raises(ValueError, match="entries"):
            simulate(g, two_device_net(), [0])

    def test_unknown_device(self):
        g = TaskGraph((1.0,), {})
        with pytest.raises(ValueError, match="unknown device"):
            simulate(g, two_device_net(), [5])

    def test_infeasible_placement_rejected(self):
        g = TaskGraph((1.0,), {}, requirements=(2,))
        devices = [Device(uid=0, speed=1.0), Device(uid=1, speed=1.0, supports=frozenset({0, 2}))]
        bw = np.full((2, 2), 10.0)
        np.fill_diagonal(bw, np.inf)
        net = DeviceNetwork(devices, bw, np.zeros((2, 2)))
        with pytest.raises(ValueError, match="infeasible"):
            simulate(g, net, [0])  # device 0 lacks hardware type 2

    def test_unsatisfiable_requirement_rejected_upfront(self):
        g = TaskGraph((1.0,), {}, requirements=(2,))
        with pytest.raises(ValueError, match="no device supports"):
            simulate(g, two_device_net(), [0])

    def test_noise_requires_rng(self):
        g = TaskGraph((1.0,), {})
        with pytest.raises(ValueError, match="rng"):
            simulate(g, two_device_net(), [0], noise=0.2)


class TestNoise:
    def test_noise_bounds(self):
        g = TaskGraph((2.0, 4.0), {(0, 1): 10.0})
        net = two_device_net()
        base = simulate(g, net, [0, 1]).makespan
        rng = np.random.default_rng(0)
        for _ in range(20):
            noisy = simulate(g, net, [0, 1], noise=0.2, rng=rng).makespan
            assert 0.8 * base <= noisy <= 1.2 * base

    def test_zero_noise_deterministic(self):
        g = TaskGraph((2.0, 4.0), {(0, 1): 10.0})
        net = two_device_net()
        assert simulate(g, net, [0, 1]).makespan == simulate(g, net, [0, 1]).makespan


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    num_tasks=st.integers(min_value=1, max_value=30),
    num_devices=st.integers(min_value=1, max_value=8),
)
def test_simulation_invariants(seed, num_tasks, num_devices):
    """Property: on random instances the B.5 model invariants hold."""
    rng = np.random.default_rng(seed)
    g = generate_task_graph(TaskGraphParams(num_tasks=num_tasks, constraint_prob=0.0), rng)
    net = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
    placement = rng.integers(0, num_devices, size=num_tasks)
    res = simulate(g, net, placement)

    cm = CostModel(g, net)
    # 1. Precedence: every task starts only after all parent data arrived.
    for v in range(num_tasks):
        for u in g.parents[v]:
            assert res.start[v] >= res.arrival[(u, v)] - 1e-9
            assert res.arrival[(u, v)] >= res.finish[u] - 1e-9
    # 2. Execution time matches the latency model exactly (no noise).
    for i in range(num_tasks):
        w = cm.compute_time(i, placement[i])
        assert res.finish[i] - res.start[i] == pytest.approx(w)
    # 3. Non-preemption / single task per device: busy intervals disjoint.
    for d in range(num_devices):
        order = res.execution_order(d)
        for a, b in zip(order, order[1:]):
            assert res.start[b] >= res.finish[a] - 1e-9
    # 4. Makespan consistency.
    assert res.makespan == pytest.approx(float(res.finish.max() - res.start.min()))
    # 5. Makespan at least the critical-path compute time of placed tasks.
    level_cost = {}
    for v in g.topo_order:
        w = cm.compute_time(v, placement[v])
        level_cost[v] = w + max((level_cost[u] for u in g.parents[v]), default=0.0)
    assert res.makespan >= max(level_cost.values()) - 1e-9
