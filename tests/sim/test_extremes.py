"""Failure injection and extreme-parameter tests for the simulator stack.

The experiments sweep wide parameter ranges; these tests pin down the
behaviour at the edges: zero-compute tasks, near-zero bandwidth, huge
delays, degenerate graphs, and the statistics of the noise model.
"""

import numpy as np
import pytest

from repro.devices import Device, DeviceNetwork
from repro.graphs import TaskGraph
from repro.sim import CostModel, cp_min_lower_bound, simulate


def net(speeds=(1.0, 1.0), bw=10.0, delay=0.0):
    devices = [Device(uid=i, speed=s) for i, s in enumerate(speeds)]
    m = len(devices)
    bwm = np.full((m, m), bw)
    np.fill_diagonal(bwm, np.inf)
    dlm = np.full((m, m), delay)
    np.fill_diagonal(dlm, 0.0)
    return DeviceNetwork(devices, bwm, dlm)


class TestZeroCompute:
    def test_all_zero_compute_chain(self):
        g = TaskGraph((0.0, 0.0, 0.0), {(0, 1): 10.0, (1, 2): 10.0})
        res = simulate(g, net(), [0, 1, 0])
        # Makespan is pure communication: 2 transfers of 1.0 each.
        assert res.makespan == pytest.approx(2.0)

    def test_zero_compute_colocated_is_instant(self):
        g = TaskGraph((0.0, 0.0), {(0, 1): 10.0})
        res = simulate(g, net(), [0, 0])
        assert res.makespan == pytest.approx(0.0)

    def test_lower_bound_fallback_keeps_slr_finite(self):
        g = TaskGraph((0.0, 0.0), {(0, 1): 10.0})
        cm = CostModel(g, net())
        assert cp_min_lower_bound(cm) == 1.0


class TestExtremeNetwork:
    def test_tiny_bandwidth_dominates(self):
        g = TaskGraph((1.0, 1.0), {(0, 1): 1000.0})
        res_split = simulate(g, net(bw=0.001), [0, 1])
        res_local = simulate(g, net(bw=0.001), [0, 0])
        assert res_split.makespan > 100 * res_local.makespan

    def test_huge_delay_added_once_per_edge(self):
        g = TaskGraph((1.0, 1.0), {(0, 1): 0.0})
        res = simulate(g, net(delay=1e6), [0, 1])
        assert res.makespan == pytest.approx(2.0 + 1e6)

    def test_single_device_network(self):
        g = TaskGraph((2.0, 3.0), {(0, 1): 50.0})
        single = DeviceNetwork(
            [Device(uid=0, speed=1.0)], np.array([[np.inf]]), np.zeros((1, 1))
        )
        res = simulate(g, single, [0, 0])
        assert res.makespan == pytest.approx(5.0)

    def test_speed_asymmetry_orders_of_magnitude(self):
        g = TaskGraph((100.0,), {})
        fastslow = net(speeds=(1e-3, 1e3))
        assert simulate(g, fastslow, [0]).makespan == pytest.approx(1e5)
        assert simulate(g, fastslow, [1]).makespan == pytest.approx(0.1)


class TestDegenerateGraphs:
    def test_single_task(self):
        g = TaskGraph((5.0,), {})
        res = simulate(g, net(), [1])
        assert res.makespan == pytest.approx(5.0)
        assert res.execution_order(1) == [0]
        assert res.execution_order(0) == []

    def test_disconnected_tasks_run_in_parallel(self):
        g = TaskGraph((4.0, 4.0), {})  # two independent entry/exit tasks
        res = simulate(g, net(), [0, 1])
        assert res.makespan == pytest.approx(4.0)

    def test_wide_fan_out_concurrent_sends(self):
        # One producer, 5 consumers on the other device: transfers are
        # concurrent (contention-free), so arrivals are simultaneous.
        edges = {(0, i): 10.0 for i in range(1, 6)}
        g = TaskGraph((1.0,) + (0.0,) * 5, edges)
        res = simulate(g, net(), [0] + [1] * 5)
        arrivals = [res.arrival[(0, i)] for i in range(1, 6)]
        assert max(arrivals) == pytest.approx(min(arrivals))


class TestNoiseStatistics:
    def test_noise_mean_preserved(self):
        rng = np.random.default_rng(0)
        samples = [CostModel.realize(10.0, 0.3, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.02)

    def test_noise_support_is_uniform_band(self):
        rng = np.random.default_rng(1)
        samples = np.array([CostModel.realize(10.0, 0.2, rng) for _ in range(4000)])
        assert samples.min() >= 8.0 and samples.max() <= 12.0
        # Uniform: central half holds ~half the mass.
        central = ((samples > 9.0) & (samples < 11.0)).mean()
        assert 0.4 < central < 0.6

    def test_noisy_makespans_bracket_expectation(self):
        g = TaskGraph((2.0, 4.0), {(0, 1): 10.0})
        n = net()
        expected = simulate(g, n, [0, 1]).makespan
        rng = np.random.default_rng(2)
        noisy = [simulate(g, n, [0, 1], noise=0.2, rng=rng).makespan for _ in range(300)]
        assert np.mean(noisy) == pytest.approx(expected, rel=0.05)
