"""Gantt-chart / schedule-summary rendering tests."""

import numpy as np
import pytest

from repro.devices import Device, DeviceNetwork
from repro.graphs import TaskGraph
from repro.sim import render_gantt, schedule_summary, simulate


def run_chain():
    g = TaskGraph((2.0, 4.0), {(0, 1): 10.0})
    devices = [Device(uid=0, speed=1.0), Device(uid=1, speed=2.0)]
    bw = np.full((2, 2), 10.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.ones((2, 2)) - np.eye(2)
    net = DeviceNetwork(devices, bw, dl)
    return g, net, simulate(g, net, [0, 1])


class TestGantt:
    def test_one_row_per_device(self):
        g, net, res = run_chain()
        chart = render_gantt(res, g)
        rows = [l for l in chart.splitlines() if l.startswith("dev")]
        assert len(rows) == 2

    def test_task_marks_present(self):
        g, net, res = run_chain()
        chart = render_gantt(res, g)
        dev0 = [l for l in chart.splitlines() if l.startswith("dev  0")][0]
        dev1 = [l for l in chart.splitlines() if l.startswith("dev  1")][0]
        assert "0" in dev0 and "1" in dev1
        assert "1" not in dev0.replace("dev  1", "")

    def test_width_respected(self):
        g, net, res = run_chain()
        chart = render_gantt(res, g, width=40)
        dev_rows = [l for l in chart.splitlines() if l.startswith("dev")]
        assert all(len(r) == len(dev_rows[0]) for r in dev_rows)
        assert "." in dev_rows[0]  # idle time visible

    def test_bad_width(self):
        g, net, res = run_chain()
        with pytest.raises(ValueError):
            render_gantt(res, g, width=5)

    def test_idle_gap_rendered(self):
        # Device 1 idles until the transfer from device 0 arrives.
        g, net, res = run_chain()
        dev1 = [l for l in render_gantt(res, g).splitlines() if l.startswith("dev  1")][0]
        bar = dev1.split("|")[1]
        assert bar.lstrip(".") != bar  # leading idle dots


class TestSummary:
    def test_contents(self):
        g, net, res = run_chain()
        text = schedule_summary(res, g)
        assert "makespan" in text
        assert "utilization" in text
        assert len([l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]) == 2

    def test_utilization_bounds(self):
        g, net, res = run_chain()
        text = schedule_summary(res, g)
        import re

        utils = [int(m) for m in re.findall(r"dev\d: (\d+)%", text)]
        assert all(0 <= u <= 100 for u in utils)
