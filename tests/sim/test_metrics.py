"""SLR / total-cost / energy / relocation-model tests."""

import numpy as np
import pytest

from repro.devices import Device, DeviceNetwork
from repro.graphs import TaskGraph
from repro.sim import (
    CostModel,
    EnergyObjective,
    MakespanObjective,
    RelocationCostModel,
    TaskRelocationProfile,
    TotalCostObjective,
    cp_min_lower_bound,
    energy_cost,
    make_affine_compute_matrix,
    simulate,
    slr,
    total_cost,
)


def net3() -> DeviceNetwork:
    devices = [
        Device(uid=0, speed=1.0, compute_power=1.0),
        Device(uid=1, speed=2.0, compute_power=2.0),
        Device(uid=2, speed=4.0, supports=frozenset({0, 1}), compute_power=4.0),
    ]
    bw = np.full((3, 3), 10.0)
    np.fill_diagonal(bw, np.inf)
    dl = np.full((3, 3), 1.0)
    np.fill_diagonal(dl, 0.0)
    return DeviceNetwork(devices, bw, dl)


def chain() -> TaskGraph:
    return TaskGraph((4.0, 8.0), {(0, 1): 20.0})


class TestCostModel:
    def test_compute_matrix_default(self):
        cm = CostModel(chain(), net3())
        assert cm.compute_time(0, 0) == 4.0
        assert cm.compute_time(1, 2) == 2.0

    def test_comm_time(self):
        cm = CostModel(chain(), net3())
        assert cm.comm_time((0, 1), 0, 1) == pytest.approx(1.0 + 2.0)
        assert cm.comm_time((0, 1), 1, 1) == 0.0

    def test_comm_time_matrix_diagonal_zero(self):
        cm = CostModel(chain(), net3())
        mat = cm.comm_time_matrix((0, 1))
        np.testing.assert_allclose(np.diag(mat), 0.0)

    def test_mean_and_min_compute_respect_feasibility(self):
        g = TaskGraph((4.0,), {}, requirements=(1,))
        cm = CostModel(g, net3())  # only device 2 supports type 1
        assert cm.min_compute_time(0) == 1.0
        assert cm.mean_compute_time(0) == 1.0

    def test_mean_comm_excludes_diagonal(self):
        cm = CostModel(chain(), net3())
        assert cm.mean_comm_time((0, 1)) == pytest.approx(1.0 + 2.0)

    def test_custom_matrix_validation(self):
        with pytest.raises(ValueError, match="compute_matrix"):
            CostModel(chain(), net3(), compute_matrix=np.ones((1, 3)))
        with pytest.raises(ValueError, match="non-negative"):
            CostModel(chain(), net3(), compute_matrix=-np.ones((2, 3)))

    def test_affine_matrix(self):
        w = make_affine_compute_matrix(chain(), unit_times=[1.0, 2.0], startup_times=[5.0, 0.0])
        np.testing.assert_allclose(w, [[9.0, 8.0], [13.0, 16.0]])

    def test_realize_bounds_and_validation(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            v = CostModel.realize(10.0, 0.3, rng)
            assert 7.0 <= v <= 13.0
        assert CostModel.realize(10.0, 0.0, None) == 10.0
        with pytest.raises(ValueError):
            CostModel.realize(1.0, 1.5, rng)


class TestSLR:
    def test_cp_min_chain(self):
        cm = CostModel(chain(), net3())
        # min w: task0 -> 1.0 (dev2), task1 -> 2.0 (dev2); path = both.
        assert cp_min_lower_bound(cm) == pytest.approx(3.0)

    def test_cp_min_respects_constraints(self):
        g = TaskGraph((4.0, 8.0), {(0, 1): 20.0}, requirements=(0, 1))
        cm = CostModel(g, net3())
        assert cp_min_lower_bound(cm) == pytest.approx(1.0 + 2.0)

    def test_cp_min_picks_heavier_branch(self):
        g = TaskGraph((1.0, 100.0, 1.0, 1.0), {(0, 1): 0.0, (0, 2): 0.0, (1, 3): 0.0, (2, 3): 0.0})
        cm = CostModel(g, net3())
        # path through task1 dominates: (1+100+1)/4 (all on dev2)
        assert cp_min_lower_bound(cm) == pytest.approx(102.0 / 4.0)

    def test_slr_definition(self):
        assert slr(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            slr(10.0, 0.0)
        with pytest.raises(ValueError):
            slr(-1.0, 1.0)

    def test_slr_at_least_one_for_unconstrained_single_path(self):
        cm = CostModel(chain(), net3())
        res = simulate(chain(), net3(), [2, 2], cm)
        assert slr(res.makespan, cp_min_lower_bound(cm)) >= 1.0

    def test_zero_compute_graph_fallback(self):
        g = TaskGraph((0.0, 0.0), {(0, 1): 1.0})
        cm = CostModel(g, net3())
        assert cp_min_lower_bound(cm) == 1.0


class TestCostObjectives:
    def test_total_cost_chain(self):
        cm = CostModel(chain(), net3())
        # both on dev0: w=4+8, comm local = 0
        assert total_cost(cm, [0, 0]) == pytest.approx(12.0)
        # split 0->1: 4 + 4 + (1 + 2) = 11
        assert total_cost(cm, [0, 1]) == pytest.approx(11.0)

    def test_energy_weights_device_power(self):
        cm = CostModel(chain(), net3())
        # dev2 is fast but power-hungry: w=(1,2), power 4 -> 12; no comm.
        assert energy_cost(cm, [2, 2], comm_power=0.5) == pytest.approx(12.0)
        # dev0: w=(4,8), power 1 -> 12. Equal here by construction.
        assert energy_cost(cm, [0, 0], comm_power=0.5) == pytest.approx(12.0)

    def test_objective_protocol(self):
        cm = CostModel(chain(), net3())
        assert MakespanObjective().evaluate(cm, [0, 0]) == pytest.approx(12.0)
        assert TotalCostObjective().evaluate(cm, [0, 0]) == pytest.approx(12.0)
        assert EnergyObjective(0.0).evaluate(cm, [1, 1]) == pytest.approx(12.0)

    def test_noisy_objective_validation(self):
        with pytest.raises(ValueError):
            MakespanObjective(noise=0.2)
        with pytest.raises(ValueError):
            MakespanObjective(noise=-0.1, rng=np.random.default_rng(0))


class TestRelocation:
    def profile(self):
        return TaskRelocationProfile(
            migration_bytes=1000.0,
            static_init_kbytes=10.0,
            startup_ms_by_type={"A": 100.0, "C": 10.0},
        )

    def model(self, include_static=False):
        return RelocationCostModel(
            {"camera": self.profile()},
            device_types={0: "A", 1: "C", 2: "C"},
            include_static_init=include_static,
        )

    def test_cost_components(self):
        # bw=10 bytes/ms, delay=1: migration = 1000/10 + 1 = 101; startup C=10.
        cost = self.model().cost_ms("camera", net3(), src_uid=0, dst_uid=1)
        assert cost == pytest.approx(101.0 + 10.0)

    def test_same_device_free(self):
        assert self.model().cost_ms("camera", net3(), 1, 1) == 0.0

    def test_static_init_included_when_requested(self):
        base = self.model().cost_ms("camera", net3(), 0, 1)
        cold = self.model(include_static=True).cost_ms("camera", net3(), 0, 1)
        assert cold == pytest.approx(base + 10.0 * 1024.0 / 10.0)

    def test_amortization_decreases_with_frequency(self):
        m = self.model()
        slow = m.amortized_cost_ms("camera", net3(), 0, 1, pipeline_frequency_hz=1.0)
        fast = m.amortized_cost_ms("camera", net3(), 0, 1, pipeline_frequency_hz=30.0)
        assert fast == pytest.approx(slow / 30.0)

    def test_validation(self):
        with pytest.raises(KeyError):
            self.model().cost_ms("lidar", net3(), 0, 1)
        with pytest.raises(ValueError):
            self.model().amortized_cost_ms("camera", net3(), 0, 1, 0.0)
        with pytest.raises(ValueError):
            TaskRelocationProfile(-1.0, 0.0, {})
        with pytest.raises(KeyError):
            self.profile().startup_ms("Z")
