"""RunStore: content addressing, atomicity, memoization, active-store slot."""

import pickle

import numpy as np
import pytest

from repro.store import (
    RunStore,
    active_store,
    canonical_key,
    code_fingerprint,
    fingerprint,
    set_active_store,
)


class TestFingerprint:
    def test_canonical_key_is_order_insensitive(self):
        assert canonical_key({"a": 1, "b": [2, 3]}) == canonical_key({"b": [2, 3], "a": 1})

    def test_tuples_and_lists_address_alike(self):
        assert fingerprint({"stream": (0, 1)}) == fingerprint({"stream": [0, 1]})

    def test_distinct_keys_distinct_fingerprints(self):
        assert fingerprint({"seed": 0}) != fingerprint({"seed": 1})

    def test_rejects_unserializable_keys(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            fingerprint({"rng": np.random.default_rng(0)})

    def test_code_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestRunStore:
    def test_roundtrip(self, tmp_path):
        store = RunStore(tmp_path)
        value = {"curve": np.arange(4.0), "final": 1.5}
        store.save("cell", {"i": 0}, value)
        loaded = store.load("cell", {"i": 0})
        assert np.array_equal(loaded["curve"], value["curve"])
        assert loaded["final"] == value["final"]

    def test_missing_key_raises_with_address(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(KeyError, match="cell/"):
            store.load("cell", {"i": 99})

    def test_kinds_are_namespaced(self, tmp_path):
        store = RunStore(tmp_path)
        store.save("cell", {"i": 0}, "cell-value")
        assert not store.has("trace", {"i": 0})

    def test_entries_are_immutable(self, tmp_path):
        # Double-writes keep the first bytes: racing deterministic
        # producers computed the same value, so first-wins is safe and
        # cheapest.
        store = RunStore(tmp_path)
        store.save("cell", {"i": 0}, "first")
        store.save("cell", {"i": 0}, "second")
        assert store.load("cell", {"i": 0}) == "first"

    def test_no_partial_files_visible(self, tmp_path):
        store = RunStore(tmp_path)
        store.save("cell", {"i": 0}, list(range(1000)))
        files = list(tmp_path.rglob("*"))
        assert all("tmp" not in f.name for f in files)

    def test_two_instances_share_entries(self, tmp_path):
        RunStore(tmp_path).save("cell", {"i": 7}, "shared")
        assert RunStore(tmp_path).load("cell", {"i": 7}) == "shared"

    def test_get_or_create_memoizes(self, tmp_path):
        store = RunStore(tmp_path)
        calls = []
        make = lambda: calls.append(1) or "value"
        assert store.get_or_create("stage", {"k": 1}, make) == "value"
        assert store.get_or_create("stage", {"k": 1}, make) == "value"
        assert len(calls) == 1
        assert store.stats.hits == 1 and store.stats.writes == 1

    def test_addresses_are_code_salted(self, tmp_path):
        # The on-disk path embeds the code fingerprint indirectly: the
        # same key under a different "code version" must not collide.
        store = RunStore(tmp_path)
        plain = fingerprint({"i": 0})
        assert store.address("cell", {"i": 0}) != plain


class TestActiveStore:
    def test_defaults_to_none_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        previous = set_active_store(None)
        try:
            assert active_store() is None
        finally:
            set_active_store(previous)

    def test_set_and_restore(self, tmp_path):
        store = RunStore(tmp_path)
        previous = set_active_store(store)
        try:
            assert active_store() is store
        finally:
            set_active_store(previous)
        assert active_store() is not store

    def test_restore_preserves_env_fallback(self, tmp_path, monkeypatch):
        # Regression: a temporary install/restore cycle (what a shard
        # run does) must not collapse the unresolved slot to an explicit
        # None, which would permanently disable $REPRO_STORE.
        import repro.store as store_module

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        monkeypatch.setattr(store_module, "_ACTIVE", store_module._UNRESOLVED)
        previous = set_active_store(RunStore(tmp_path / "temporary"))
        set_active_store(previous)
        resolved = active_store()
        assert resolved is not None
        assert resolved.root == tmp_path / "env-store"

    def test_rejects_non_store_values(self):
        with pytest.raises(TypeError, match="RunStore or None"):
            set_active_store("/tmp/not-a-store")

    def test_pickles_are_plain_files(self, tmp_path):
        # The transport claim: a store entry is one ordinary file whose
        # bytes are a pickle — rsync/scp of the directory is a full sync.
        store = RunStore(tmp_path)
        path = store.save("cell", {"i": 3}, ("tuple", 3))
        assert pickle.loads(path.read_bytes()) == ("tuple", 3)
