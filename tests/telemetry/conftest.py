"""Telemetry tests run against the process-wide collector, so every
test gets a clean span state and its enabled flag restored.  The
metrics registry is deliberately NOT cleared here: instrumented modules
(gnn, store) hold references to their registry counters from import
time, and `Metrics.reset()` would orphan them for the rest of the
session — tests that need registry isolation use a fresh `Metrics()`
instance or uniquely named instruments instead.
"""

import pytest

from repro.telemetry import collector, reset, set_enabled


@pytest.fixture(autouse=True)
def clean_spans():
    previous = collector().enabled
    reset()
    yield
    set_enabled(previous)
    reset()
