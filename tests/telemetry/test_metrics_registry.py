"""Metrics registry: instruments, snapshot algebra, absorb, DeltaTracker."""

import pickle

from repro.telemetry import DeltaTracker, Metrics, MetricsSnapshot


class TestInstruments:
    def test_counter_get_or_create(self):
        reg = Metrics()
        c = reg.counter("a.b")
        c.inc()
        c.inc(2.5)
        assert reg.counter("a.b") is c
        assert c.value == 3.5

    def test_gauge_last_write_wins(self):
        reg = Metrics()
        g = reg.gauge("depth")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_summary(self):
        reg = Metrics()
        h = reg.histogram("batch")
        for v in (2, 8, 5):
            h.observe(v)
        assert (h.count, h.total, h.min, h.max) == (3, 15.0, 2.0, 8.0)
        assert h.mean == 5.0

    def test_empty_histogram_mean_is_zero(self):
        assert Metrics().histogram("x").mean == 0.0


class TestSnapshot:
    def test_snapshot_is_frozen_copy(self):
        reg = Metrics()
        reg.counter("c").inc()
        snap = reg.snapshot()
        reg.counter("c").inc()
        assert snap.counters["c"] == 1.0

    def test_unobserved_histograms_omitted(self):
        reg = Metrics()
        reg.histogram("never")
        assert reg.snapshot().histograms == {}

    def test_delta_drops_unchanged(self):
        reg = Metrics()
        reg.counter("stable").inc(5)
        reg.gauge("g").set(1)
        before = reg.snapshot()
        reg.counter("moved").inc(2)
        reg.gauge("g").set(9)
        delta = reg.snapshot().delta(before)
        assert delta.counters == {"moved": 2.0}
        assert delta.gauges == {"g": 9.0}

    def test_histogram_delta_subtracts_counts(self):
        reg = Metrics()
        reg.histogram("h").observe(1)
        before = reg.snapshot()
        reg.histogram("h").observe(10)
        delta = reg.snapshot().delta(before)
        count, total, _, hi = delta.histograms["h"]
        assert (count, total, hi) == (1, 10.0, 10.0)

    def test_merge_snapshot_accumulates(self):
        reg = Metrics()
        reg.counter("c").inc(1)
        reg.histogram("h").observe(3)
        shipped = MetricsSnapshot(
            counters={"c": 2.0},
            gauges={"g": 7.0},
            histograms={"h": (2, 11.0, 1.0, 10.0)},
        )
        reg.merge_snapshot(shipped)
        snap = reg.snapshot()
        assert snap.counters["c"] == 3.0
        assert snap.gauges["g"] == 7.0
        assert snap.histograms["h"] == (3, 14.0, 1.0, 10.0)

    def test_snapshot_picklable(self):
        reg = Metrics()
        reg.counter("c").inc()
        reg.histogram("h").observe(2)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        assert snap.counters == {"c": 1.0}

    def test_as_dict_expands_histograms(self):
        reg = Metrics()
        reg.histogram("h").observe(2)
        reg.histogram("h").observe(4)
        rendered = reg.snapshot().as_dict()
        assert rendered["histograms"]["h"] == {
            "count": 2,
            "total": 6.0,
            "min": 2.0,
            "max": 4.0,
            "mean": 3.0,
        }


class TestAbsorb:
    def test_absorb_prefixes_and_skips(self):
        reg = Metrics()
        stats = {"evaluations": 10, "cache_hits": 7, "hit_rate": 0.7, "label": "x"}
        reg.absorb("evaluator", stats, skip=("hit_rate",))
        snap = reg.snapshot()
        assert snap.counters["evaluator.evaluations"] == 10
        assert snap.counters["evaluator.cache_hits"] == 7
        assert "evaluator.hit_rate" not in snap.counters
        assert "evaluator.label" not in snap.counters

    def test_absorb_accumulates_across_calls(self):
        reg = Metrics()
        reg.absorb("s", {"n": 1})
        reg.absorb("s", {"n": 2})
        assert reg.snapshot().counters["s.n"] == 3


class TestDeltaTracker:
    def test_windows_advance(self):
        tracker = DeltaTracker({"evals": 0, "hits": 0})
        first = tracker.delta({"evals": 4, "hits": 1})
        second = tracker.delta({"evals": 9, "hits": 1})
        assert first == {"evals": 4, "hits": 1}
        assert second == {"evals": 5, "hits": 0}

    def test_non_numeric_values_filtered(self):
        tracker = DeltaTracker({"n": 1, "name": "a"})
        assert tracker.delta({"n": 3, "name": "b"}) == {"n": 2}

    def test_new_keys_counted_from_zero(self):
        tracker = DeltaTracker({})
        assert tracker.delta({"fresh": 5}) == {"fresh": 5}
