"""Leveled logger routing and the run-log write/read/render pipeline."""

import json

import pytest

from repro.telemetry import (
    ProgressWriter,
    capture_run,
    collect_run_files,
    export_chrome,
    log,
    metrics,
    read_records,
    render_top,
    render_tree,
    set_enabled,
    span,
    write_run_log,
)


@pytest.fixture(autouse=True)
def default_level(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    previous = log.set_level(None)
    yield
    log.set_level(previous)


class TestLogger:
    def test_info_goes_to_stderr_only(self, capsys):
        log.info("hello")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "[repro] hello\n"

    def test_debug_hidden_at_default_level(self, capsys):
        log.debug("verbose")
        assert capsys.readouterr().err == ""

    def test_env_level_debug(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        log.debug("verbose")
        assert "[repro] verbose" in capsys.readouterr().err

    def test_env_level_quiet_silences_warn(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "quiet")
        log.warn("problem")
        assert capsys.readouterr().err == ""

    def test_set_level_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "debug")
        log.set_level("quiet")
        log.info("hidden")
        assert capsys.readouterr().err == ""


def _capture_one_run(meta):
    with capture_run(meta) as capture:
        with span("experiment.t"):
            with span("stage"):
                pass
    return capture


class TestRunLog:
    def test_capture_disabled_has_no_delta(self):
        set_enabled(False)
        with capture_run({"experiment": "t"}) as capture:
            pass
        assert capture.delta is None
        assert capture.duration_s >= 0.0

    def test_write_read_roundtrip(self, tmp_path):
        set_enabled(True)
        name = "test.runlog.counter"
        with capture_run({"experiment": "t", "seed": 3}) as capture:
            with span("experiment.t"):
                metrics().counter(name).inc(2)
        path = write_run_log(tmp_path / "run.jsonl", capture)
        records = read_records([path])
        kinds = {r["kind"] for r in records}
        assert "run" in kinds and "span" in kinds
        (run,) = [r for r in records if r["kind"] == "run"]
        assert run["meta.experiment"] == "t"
        assert run["meta.seed"] == 3
        assert run["duration_s"] == capture.duration_s
        spans = {r["path"]: r for r in records if r["kind"] == "span"}
        assert spans["experiment.t"]["calls"] == 1
        counters = {
            r["name"]: r["value"]
            for r in records
            if r["kind"] == "metric" and r["type"] == "counter"
        }
        assert counters[name] == 2

    def test_read_records_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "run", "duration_s": 1.0}\nnot json\n\n')
        assert len(read_records([path])) == 1

    def test_read_records_ignores_missing_files(self, tmp_path):
        assert read_records([tmp_path / "absent.jsonl"]) == []


class TestCollectRunFiles:
    def test_file_is_itself(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text("{}\n")
        assert collect_run_files(path) == [path]

    def test_missing_target_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_run_files(tmp_path / "nope")

    def test_dir_prefers_telemetry_subdir(self, tmp_path):
        sub = tmp_path / "telemetry"
        sub.mkdir()
        (sub / "shard0of2.jsonl").write_text("{}\n")
        (sub / "shard1of2.jsonl").write_text("{}\n")
        (tmp_path / "stray.jsonl").write_text("{}\n")
        found = collect_run_files(tmp_path)
        assert [p.name for p in found] == ["shard0of2.jsonl", "shard1of2.jsonl"]

    def test_plain_dir_yields_newest_log(self, tmp_path):
        import os

        old = tmp_path / "old.jsonl"
        new = tmp_path / "new.jsonl"
        old.write_text("{}\n")
        new.write_text("{}\n")
        os.utime(old, (1, 1))
        os.utime(new, (2, 2))
        assert collect_run_files(tmp_path) == [new]

    def test_shard_logs_merge(self, tmp_path):
        (tmp_path / "shard-0.jsonl").write_text("{}\n")
        (tmp_path / "shard-1.jsonl").write_text("{}\n")
        assert len(collect_run_files(tmp_path)) == 2

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_run_files(tmp_path)


class TestRendering:
    def _records(self):
        return [
            {"kind": "run", "duration_s": 2.0, "meta.experiment": "fig4"},
            {"kind": "span", "path": "experiment.fig4", "calls": 1, "seconds": 1.8},
            {"kind": "span", "path": "experiment.fig4/train", "calls": 4, "seconds": 1.5},
            {"kind": "span", "path": "experiment.fig4/eval", "calls": 2, "seconds": 0.2},
        ]

    def test_tree_structure_and_coverage(self):
        out = render_tree(self._records())
        assert "run: experiment=fig4" in out
        assert "coverage: 90.0% of 2.00s" in out
        lines = out.splitlines()
        root_idx = next(i for i, l in enumerate(lines) if l.startswith("experiment.fig4"))
        # Children indented under the root, heaviest first.
        assert lines[root_idx + 1].startswith("  train")
        assert lines[root_idx + 2].startswith("  eval")

    def test_tree_merges_spans_across_records(self):
        records = self._records() + [
            {"kind": "span", "path": "experiment.fig4", "calls": 1, "seconds": 0.1}
        ]
        assert " 2 " in render_tree(records).splitlines()[-3]

    def test_tree_without_spans_says_so(self):
        out = render_tree([{"kind": "run", "duration_s": 1.0}])
        assert "no spans recorded" in out

    def test_tree_reports_dropped_events(self):
        out = render_tree(self._records() + [{"kind": "events_dropped", "count": 7}])
        assert "dropped past cap: 7" in out

    def test_top_orders_by_self_time(self):
        out = render_top(self._records(), top=2)
        lines = [l for l in out.splitlines()[2:] if l.strip()]
        assert lines[0].startswith("experiment.fig4/train")
        assert len(lines) == 2

    def test_chrome_export_shape(self):
        records = self._records() + [
            {
                "kind": "event",
                "path": "experiment.fig4/train",
                "start_s": 0.5,
                "duration_s": 0.25,
                "pid": 42,
            }
        ]
        trace = export_chrome(records)
        assert trace["displayTimeUnit"] == "ms"
        (event,) = trace["traceEvents"]
        assert event["name"] == "train"
        assert event["cat"] == "experiment.fig4"
        assert event["ph"] == "X"
        assert event["ts"] == 0.5e6
        assert event["dur"] == 0.25e6
        assert event["pid"] == 42
        assert event["args"]["path"] == "experiment.fig4/train"


class TestProgressWriter:
    def test_appends_progress_records(self, tmp_path):
        writer = ProgressWriter(tmp_path / "deep" / "progress.jsonl")
        writer.write(phase="start", shard=0)
        writer.write(phase="await-cells", remaining=3, owners=[1, 2])
        lines = (tmp_path / "deep" / "progress.jsonl").read_text().splitlines()
        records = [json.loads(l) for l in lines]
        assert [r["phase"] for r in records] == ["start", "await-cells"]
        assert all(r["kind"] == "progress" for r in records)
        assert all("wall_time" in r for r in records)
        assert records[1]["owners"] == [1, 2]

    def test_oserror_swallowed(self, tmp_path):
        blocked = tmp_path / "file"
        blocked.write_text("")
        writer = ProgressWriter(blocked / "progress.jsonl")  # parent is a file
        writer.write(phase="start")  # must not raise
