"""Telemetry must be observational only.

The hard constraint of the telemetry fabric: report bytes are identical
with telemetry on and off, and the merged span aggregates are identical
at any worker or shard count (timings aside).  Runs at a micro scale so
tier-1 stays fast.
"""

import dataclasses
import json

import pytest

from repro.experiments import QUICK, fig4
from repro.shard import plan, run_shard
from repro.telemetry import collector, read_records, reset, set_enabled
from repro.telemetry.spans import _env_enabled

MICRO = dataclasses.replace(
    QUICK,
    name="telemetry-micro",
    num_tasks=5,
    num_devices=3,
    train_graphs=2,
    test_cases=2,
    episodes=2,
    num_networks=2,
    pairwise_cases=2,
)

SEED = 3


def span_calls():
    return {path: stat.calls for path, stat in collector().stats.items()}


class TestEnvSwitch:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert _env_enabled()

    @pytest.mark.parametrize("value", ["off", "0", "false", "no", " OFF "])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TELEMETRY", value)
        assert not _env_enabled()

    def test_other_values_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_TELEMETRY", "on")
        assert _env_enabled()


class TestReportBytes:
    @pytest.fixture(scope="class")
    def reports(self):
        set_enabled(True)
        reset()
        with_telemetry = fig4.run(MICRO, seed=SEED, workers=1)
        counts = span_calls()
        set_enabled(False)
        reset()
        without = fig4.run(MICRO, seed=SEED, workers=1)
        set_enabled(True)
        return with_telemetry, without, counts

    def test_to_json_byte_identical_on_off(self, reports):
        with_telemetry, without, _ = reports
        assert with_telemetry.to_json() == without.to_json()

    def test_stable_data_identical_on_off(self, reports):
        with_telemetry, without, _ = reports
        assert json.dumps(with_telemetry.stable_data(), sort_keys=True) == json.dumps(
            without.stable_data(), sort_keys=True
        )

    def test_disabled_run_recorded_nothing(self, reports):
        *_, counts = reports
        assert counts  # the enabled run did record spans
        set_enabled(False)
        reset()
        fig4.run(MICRO, seed=SEED, workers=1)
        assert span_calls() == {}


class TestWorkerMergeEquality:
    def test_span_calls_equal_workers_1_and_4(self):
        set_enabled(True)
        reset()
        fig4.run(MICRO, seed=SEED, workers=1)
        serial = span_calls()
        reset()
        fig4.run(MICRO, seed=SEED, workers=4)
        fanned = span_calls()
        assert serial == fanned
        assert any(p.endswith("train.cell") for p in serial)
        assert any(p.endswith("eval.case") for p in serial)


class TestShardMergeEquality:
    """Summed compute-cell span calls across a shard set's run logs are
    shard-count independent: the cells compute exactly once per plan no
    matter how they are distributed.  Structural spans (the experiment
    root, grid/sweep wrappers) occur once per *shard run* by design and
    are excluded from the equality."""

    def shard_span_totals(self, tmp_path, num_shards):
        out = tmp_path / f"plan{num_shards}"
        manifests = plan("fig4", num_shards, SEED, MICRO, out)
        for manifest in manifests:
            reset()
            run_shard(manifest, workers=1)
        logs = sorted((out / "store" / "telemetry").glob("shard*.jsonl"))
        assert len(logs) == num_shards
        totals: dict[str, int] = {}
        for record in read_records(logs):
            if record.get("kind") != "span":
                continue
            path = record["path"]
            if "train.cell" not in path and "eval.case" not in path:
                continue
            totals[path] = totals.get(path, 0) + record["calls"]
        return totals

    def test_totals_equal_shards_1_and_3(self, tmp_path):
        set_enabled(True)
        one = self.shard_span_totals(tmp_path, 1)
        three = self.shard_span_totals(tmp_path, 3)
        assert one == three
        assert any(p.endswith("train.cell") for p in one)

    def test_progress_heartbeats_written(self, tmp_path):
        set_enabled(True)
        out = tmp_path / "plan"
        (manifest,) = plan("fig4", 1, SEED, MICRO, out)
        reset()
        run_shard(manifest, workers=1)
        progress = read_records(
            sorted((out / "store" / "telemetry").glob("progress-*.jsonl"))
        )
        phases = [r["phase"] for r in progress if r.get("kind") == "progress"]
        assert phases[0] == "start"
        assert phases[-1] == "done"
        assert "fanout-done" in phases
