"""Cross-thread spans: each thread nests under its own path.

The serve daemon answers requests from concurrent connection threads;
span paths are thread-local so one request's ``serve.request/...`` tree
never interleaves with another's, while the aggregated stats (guarded
by the collector lock) still sum across all threads.
"""

import threading

from repro.telemetry import collector, set_enabled, span


class TestThreadLocalPaths:
    def test_each_thread_roots_its_own_tree(self):
        set_enabled(True)
        barrier = threading.Barrier(4)

        def request(i):
            with span("serve.request"):
                barrier.wait()  # all four requests in flight at once
                with span("serve.event"):
                    pass

        threads = [threading.Thread(target=request, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = collector().stats
        assert stats["serve.request"].calls == 4
        # nested spans land under the per-thread root, never at top level
        assert stats["serve.request/serve.event"].calls == 4
        assert "serve.event" not in stats

    def test_worker_thread_does_not_inherit_main_path(self):
        set_enabled(True)
        seen = {}

        def worker():
            seen["path"] = collector().path
            with span("inner"):
                pass

        with span("outer"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        stats = collector().stats
        assert seen["path"] == ""
        assert "inner" in stats and "outer/inner" not in stats

    def test_concurrent_same_span_counts_are_not_lost(self):
        set_enabled(True)
        rounds = 200
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(rounds):
                with span("hot"):
                    pass

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert collector().stats["hot"].calls == 8 * rounds
