"""Span collector: nesting, disabled mode, task brackets, event cap."""

import pickle

from repro.telemetry import (
    TaskDelta,
    begin_task,
    collector,
    enabled,
    end_task,
    merge_task_delta,
    metrics,
    reset,
    set_enabled,
    span,
    traced,
)


class TestNesting:
    def test_paths_join_with_slash(self):
        set_enabled(True)
        with span("outer"):
            with span("inner"):
                pass
            with span("inner"):
                pass
        stats = collector().stats
        assert stats["outer"].calls == 1
        assert stats["outer/inner"].calls == 2
        assert collector().path == ""

    def test_seconds_accumulate_and_nest(self):
        set_enabled(True)
        with span("a"):
            with span("b"):
                pass
        stats = collector().stats
        assert stats["a"].seconds >= stats["a/b"].seconds >= 0.0

    def test_path_restored_on_exception(self):
        set_enabled(True)
        try:
            with span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert collector().path == ""
        assert collector().stats["boom"].calls == 1

    def test_reset_keeps_enabled_flag(self):
        set_enabled(True)
        with span("x"):
            pass
        reset()
        assert collector().stats == {}
        assert collector().events == []
        assert enabled()


class TestDisabled:
    def test_disabled_records_nothing(self):
        set_enabled(False)
        with span("ghost"):
            pass
        assert collector().stats == {}

    def test_disabled_span_is_shared_noop(self):
        set_enabled(False)
        assert span("a") is span("b")

    def test_set_enabled_returns_previous(self):
        set_enabled(True)
        assert set_enabled(False) is True
        assert set_enabled(True) is False


class TestTraced:
    def test_with_label(self):
        set_enabled(True)

        @traced("worker.step")
        def step(x):
            return x + 1

        assert step(1) == 2
        assert collector().stats["worker.step"].calls == 1

    def test_bare_decorator_uses_qualname(self):
        set_enabled(True)

        @traced
        def plain():
            return 7

        assert plain() == 7
        (path,) = collector().stats
        assert path.endswith("plain")

    def test_disabled_passthrough(self):
        set_enabled(False)

        @traced("skipped")
        def fn():
            return "ok"

        assert fn() == "ok"
        assert collector().stats == {}


class TestTaskBrackets:
    def test_begin_task_none_when_disabled(self):
        set_enabled(False)
        assert begin_task() is None

    def test_delta_is_task_relative_and_picklable(self):
        set_enabled(True)
        with span("parent"):
            token = begin_task()
            with span("work"):
                with span("sub"):
                    pass
            delta = end_task(token)
        delta = pickle.loads(pickle.dumps(delta))
        assert isinstance(delta, TaskDelta)
        assert set(delta.spans) == {"work", "work/sub"}
        assert delta.spans["work"][0] == 1
        # The bracket restored the enclosing path.
        assert collector().stats["parent"].calls == 1

    def test_delta_excludes_prior_activity(self):
        set_enabled(True)
        with span("before"):
            pass
        token = begin_task()
        with span("during"):
            pass
        delta = end_task(token)
        assert set(delta.spans) == {"during"}

    def test_merge_grafts_under_current_path(self):
        set_enabled(True)
        token = begin_task()
        with span("cell"):
            pass
        delta = end_task(token)
        reset()
        with span("train.grid"):
            merge_task_delta(delta)
        stats = collector().stats
        assert stats["train.grid/cell"].calls == 1

    def test_merge_with_explicit_prefix(self):
        set_enabled(True)
        token = begin_task()
        with span("leaf"):
            pass
        delta = end_task(token)
        reset()
        merge_task_delta(delta, prefix="shardX")
        assert "shardX/leaf" in collector().stats

    def test_merge_accumulates_repeated_deltas(self):
        set_enabled(True)
        token = begin_task()
        with span("leaf"):
            pass
        delta = end_task(token)
        reset()
        merge_task_delta(delta, prefix="")
        merge_task_delta(delta, prefix="")
        assert collector().stats["leaf"].calls == 2

    def test_merge_none_or_disabled_is_noop(self):
        set_enabled(True)
        merge_task_delta(None)
        set_enabled(False)
        merge_task_delta(TaskDelta(spans={"x": (1, 0.1)}))
        assert collector().stats == {}

    def test_delta_ships_metric_increments(self):
        set_enabled(True)
        name = "test.task_bracket.counter"
        token = begin_task()
        metrics().counter(name).inc(3)
        delta = end_task(token)
        assert delta.metrics.counters[name] == 3


class TestEventCap:
    def test_short_spans_aggregate_without_events(self):
        set_enabled(True)
        with span("quick"):
            pass  # far below event_min_s
        assert collector().stats["quick"].calls == 1
        assert collector().events == []

    def test_cap_counts_dropped_events(self):
        set_enabled(True)
        col = collector()
        col.max_events = 2
        col.event_min_s = 0.0
        try:
            for _ in range(5):
                with span("e"):
                    pass
            assert len(col.events) == 2
            assert col.events_dropped == 3
            assert col.stats["e"].calls == 5  # aggregates never drop
        finally:
            col.max_events = 50_000
            col.event_min_s = 0.0005
