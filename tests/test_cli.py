"""CLI tests: the train/test/generate/experiment workflow (Artifact A.5)."""

import json
import pathlib

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.episodes == 50 and args.embedding == "giph"

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig4", "--scale", "huge"])


class TestWorkflow:
    def test_generate(self, capsys):
        rc = main(["generate", "--count", "2", "--num-tasks", "6", "--num-devices", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instance 0" in out and "instance 1" in out
        assert "action space" in out

    def test_train_then_test_roundtrip(self, tmp_path, capsys):
        rc = main(
            [
                "train",
                "--episodes", "3",
                "--num-tasks", "5",
                "--num-devices", "3",
                "--train-graphs", "2",
                "--embedding", "giph-ne-pol",
                "--logdir", str(tmp_path),
            ]
        )
        assert rc == 0
        run_dirs = list(tmp_path.iterdir())
        assert len(run_dirs) == 1
        run_dir = run_dirs[0]
        assert (run_dir / "agent.npz").exists()
        assert (run_dir / "args.json").exists()
        history = json.loads((run_dir / "train_data.json").read_text())
        assert len(history) == 3

        rc = main(["test", "--run-folder", str(run_dir), "--num-testing-cases", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean over 2 cases" in out
        test_dirs = [d for d in run_dir.iterdir() if d.name.startswith("test_")]
        assert len(test_dirs) == 1
        evals = json.loads((test_dirs[0] / "eval_data.json").read_text())
        assert len(evals) == 2

    def test_test_with_noise(self, tmp_path, capsys):
        main(
            [
                "train", "--episodes", "2", "--num-tasks", "4", "--num-devices", "2",
                "--train-graphs", "1", "--embedding", "giph-ne-pol",
                "--logdir", str(tmp_path),
            ]
        )
        run_dir = next(tmp_path.iterdir())
        rc = main(
            ["test", "--run-folder", str(run_dir), "--num-testing-cases", "1", "--noise", "0.2"]
        )
        assert rc == 0

    def test_experiment_table1(self, capsys):
        rc = main(["experiment", "table1", "--scale", "quick"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out


class TestExperimentRegistry:
    def test_unknown_id_fails_cleanly(self, capsys):
        # Used to escape as a raw ModuleNotFoundError traceback.
        rc = main(["experiment", "no-such-figure"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "unknown experiment 'no-such-figure'" in out
        assert "fig4" in out and "ablation" in out  # lists every valid id

    def test_id_list_matches_package_contents(self):
        # The registry is the source of truth for CLI help; this pins it
        # to the modules that actually exist so neither can drift (the
        # old hand-written help string omitted `ablation`).
        import pathlib

        import repro.experiments as experiments
        from repro.experiments.registry import EXPERIMENT_IDS

        package_dir = pathlib.Path(experiments.__file__).parent
        harness = {
            "base", "config", "datasets", "registry", "reporting", "runner",
        }
        modules = {
            p.stem
            for p in package_dir.glob("*.py")
            if p.stem not in harness and not p.stem.startswith("_")
        }
        assert set(EXPERIMENT_IDS) == modules

    def test_help_generated_from_registry(self, capsys):
        from repro.experiments.registry import (
            EXPERIMENT_IDS,
            parallel_experiment_ids,
            serial_experiment_ids,
        )

        with pytest.raises(SystemExit):
            main(["experiment", "--help"])
        out = capsys.readouterr().out
        for experiment_id in EXPERIMENT_IDS:
            assert experiment_id in out, experiment_id
        # The stale hardcoded "(fig6, fig14)" workers note is gone: every
        # parallel id is named, and the serial-by-design ones separately.
        for experiment_id in parallel_experiment_ids():
            assert experiment_id in out
        assert serial_experiment_ids() == ("table1", "table7")

    def test_static_split_matches_run_signatures(self):
        # SERIAL_EXPERIMENT_IDS is declared statically (so help
        # generation stays import-free); this introspects every module's
        # actual `run` signature so the declaration cannot drift.  The
        # workers and backend capabilities must agree: an experiment
        # that fans out must be shardable, and vice versa.
        from repro.experiments.registry import (
            EXPERIMENT_IDS,
            SERIAL_EXPERIMENT_IDS,
            supports_backend,
            supports_workers,
        )

        for experiment_id in EXPERIMENT_IDS:
            expected = experiment_id not in SERIAL_EXPERIMENT_IDS
            assert supports_workers(experiment_id) is expected, experiment_id
            assert supports_backend(experiment_id) is expected, experiment_id

    def test_help_does_not_import_experiment_modules(self):
        # The CLI builds help from the registry on every invocation;
        # generating it must never pull in the experiment modules (and
        # the machinery behind them) for `repro --help` or
        # non-experiment subcommands.
        import subprocess
        import sys

        code = (
            "import sys\n"
            "from repro.cli import build_parser\n"
            "from repro.experiments.registry import EXPERIMENT_IDS\n"
            "build_parser()\n"
            "heavy = set(EXPERIMENT_IDS) | {'runner', 'datasets'}\n"
            "loaded = [m for m in sys.modules\n"
            "          if m.rpartition('.')[0] == 'repro.experiments'\n"
            "          and m.rpartition('.')[2] in heavy]\n"
            "assert not loaded, loaded\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_serial_experiment_notes_ignored_workers(self, capsys):
        rc = main(["experiment", "table1", "--scale", "quick", "--workers", "3"])
        assert rc == 0
        assert "runs serially by design" in capsys.readouterr().out


class TestShardCli:
    """`repro shard` wiring.  Planning is pure JSON (no experiment
    compute), so these run at quick scale; execution/merge semantics are
    covered at micro scale in tests/shard/."""

    def test_plan_writes_manifests_and_usage(self, tmp_path, capsys):
        rc = main(
            ["shard", "plan", "fig15", "--shards", "3", "--scale", "quick",
             "--out", str(tmp_path)]
        )
        assert rc == 0
        manifests = sorted(tmp_path.glob("shard-*.json"))
        assert [m.name for m in manifests] == [
            "shard-0of3.json", "shard-1of3.json", "shard-2of3.json"
        ]
        payload = json.loads(manifests[0].read_text())
        assert payload["experiment"] == "fig15"
        assert payload["cells"] == {"strategy": "modulo", "modulus": 3, "residue": 0}
        out = capsys.readouterr().out
        assert "repro shard run" in out and "repro shard merge" in out

    def test_plan_rejects_serial_experiment(self, capsys):
        rc = main(["shard", "plan", "table1", "--shards", "2", "--scale", "quick"])
        assert rc == 2
        assert "serially by design" in capsys.readouterr().out

    def test_plan_rejects_unknown_experiment(self, capsys):
        rc = main(["shard", "plan", "no-such-figure", "--shards", "2"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_run_rejects_stale_manifest(self, tmp_path, capsys):
        main(["shard", "plan", "fig15", "--shards", "1", "--scale", "quick",
              "--out", str(tmp_path)])
        manifest = tmp_path / "shard-0of1.json"
        payload = json.loads(manifest.read_text())
        payload["fingerprint"]["code"] = "f" * 64
        manifest.write_text(json.dumps(payload))
        rc = main(["shard", "run", str(manifest)])
        assert rc == 2
        assert "code fingerprint" in capsys.readouterr().out

    def test_merge_on_empty_dir_fails_cleanly(self, tmp_path, capsys):
        rc = main(["shard", "merge", str(tmp_path)])
        assert rc == 2
        assert "no shard-*.json manifests" in capsys.readouterr().out

    def test_experiment_backend_rejected_for_serial(self, capsys):
        rc = main(["experiment", "table1", "--scale", "quick", "--backend", "fork"])
        assert rc == 2
        assert "serially by design" in capsys.readouterr().out

    def test_test_accepts_workers_flag(self):
        args = build_parser().parse_args(
            ["test", "--run-folder", "x", "--workers", "2"]
        )
        assert args.workers == 2


class TestScenario:
    def test_list_shows_every_preset(self, capsys):
        from repro.scenarios import DEFAULT_REGISTRY

        rc = main(["scenario", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in DEFAULT_REGISTRY.names():
            assert name in out

    def test_bare_scenario_defaults_to_list(self, capsys):
        rc = main(["scenario"])
        assert rc == 0
        assert "edge-churn" in capsys.readouterr().out

    def test_run_requires_name(self, capsys):
        rc = main(["scenario", "run"])
        assert rc == 2
        assert "needs a preset name" in capsys.readouterr().out

    def test_run_unknown_preset_fails_cleanly(self, capsys):
        rc = main(["scenario", "run", "no-such-preset"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "unknown scenario" in out and "edge-churn" in out

    def test_run_unknown_policy_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "edge-churn", "--policy", "alphago"])

    def test_run_replays_preset(self, capsys):
        rc = main(
            ["scenario", "run", "stable-cluster", "--policy", "task-eft", "--seed", "3",
             "--events"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario 'stable-cluster'" in out
        assert "arrival" in out
        assert "summary[task-eft]" in out

    def test_run_default_policies(self, capsys):
        rc = main(["scenario", "run", "compute-brownout"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "summary[random]" in out and "summary[task-eft]" in out
