"""CLI tests: the train/test/generate/experiment workflow (Artifact A.5)."""

import json
import pathlib

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.episodes == 50 and args.embedding == "giph"

    def test_experiment_scale_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig4", "--scale", "huge"])


class TestWorkflow:
    def test_generate(self, capsys):
        rc = main(["generate", "--count", "2", "--num-tasks", "6", "--num-devices", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instance 0" in out and "instance 1" in out
        assert "action space" in out

    def test_train_then_test_roundtrip(self, tmp_path, capsys):
        rc = main(
            [
                "train",
                "--episodes", "3",
                "--num-tasks", "5",
                "--num-devices", "3",
                "--train-graphs", "2",
                "--embedding", "giph-ne-pol",
                "--logdir", str(tmp_path),
            ]
        )
        assert rc == 0
        run_dirs = list(tmp_path.iterdir())
        assert len(run_dirs) == 1
        run_dir = run_dirs[0]
        assert (run_dir / "agent.npz").exists()
        assert (run_dir / "args.json").exists()
        history = json.loads((run_dir / "train_data.json").read_text())
        assert len(history) == 3

        rc = main(["test", "--run-folder", str(run_dir), "--num-testing-cases", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean over 2 cases" in out
        test_dirs = [d for d in run_dir.iterdir() if d.name.startswith("test_")]
        assert len(test_dirs) == 1
        evals = json.loads((test_dirs[0] / "eval_data.json").read_text())
        assert len(evals) == 2

    def test_test_with_noise(self, tmp_path, capsys):
        main(
            [
                "train", "--episodes", "2", "--num-tasks", "4", "--num-devices", "2",
                "--train-graphs", "1", "--embedding", "giph-ne-pol",
                "--logdir", str(tmp_path),
            ]
        )
        run_dir = next(tmp_path.iterdir())
        rc = main(
            ["test", "--run-folder", str(run_dir), "--num-testing-cases", "1", "--noise", "0.2"]
        )
        assert rc == 0

    def test_experiment_table1(self, capsys):
        rc = main(["experiment", "table1", "--scale", "quick"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out


class TestScenario:
    def test_list_shows_every_preset(self, capsys):
        from repro.scenarios import DEFAULT_REGISTRY

        rc = main(["scenario", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in DEFAULT_REGISTRY.names():
            assert name in out

    def test_bare_scenario_defaults_to_list(self, capsys):
        rc = main(["scenario"])
        assert rc == 0
        assert "edge-churn" in capsys.readouterr().out

    def test_run_requires_name(self, capsys):
        rc = main(["scenario", "run"])
        assert rc == 2
        assert "needs a preset name" in capsys.readouterr().out

    def test_run_unknown_preset_fails_cleanly(self, capsys):
        rc = main(["scenario", "run", "no-such-preset"])
        assert rc == 2
        out = capsys.readouterr().out
        assert "unknown scenario" in out and "edge-churn" in out

    def test_run_unknown_policy_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "run", "edge-churn", "--policy", "alphago"])

    def test_run_replays_preset(self, capsys):
        rc = main(
            ["scenario", "run", "stable-cluster", "--policy", "task-eft", "--seed", "3",
             "--events"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "scenario 'stable-cluster'" in out
        assert "arrival" in out
        assert "summary[task-eft]" in out

    def test_run_default_policies(self, capsys):
        rc = main(["scenario", "run", "compute-brownout"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "summary[random]" in out and "summary[task-eft]" in out
