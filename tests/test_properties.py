"""Cross-cutting property-based tests on core invariants.

These complement the per-module suites with randomized checks of the
mathematical properties the reproduction's correctness rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import eft_estimates, heft_placement, upward_ranks
from repro.core import (
    FixedBudget,
    GpNetBuilder,
    Patience,
    PlacementProblem,
    random_placement,
)
from repro.core.reinforce import average_reward_baseline, discounted_returns
from repro.devices import DeviceNetworkParams, generate_device_network
from repro.graphs import TaskGraphParams, generate_task_graph
from repro.sim import CostModel, MakespanObjective, TotalCostObjective, cp_min_lower_bound, simulate


def make_problem(seed: int, num_tasks: int = 8, num_devices: int = 4) -> PlacementProblem:
    rng = np.random.default_rng(seed)
    graph = generate_task_graph(TaskGraphParams(num_tasks=num_tasks, constraint_prob=0.3), rng)
    network = generate_device_network(DeviceNetworkParams(num_devices=num_devices), rng)
    return PlacementProblem(graph, network)


class TestReinforceMath:
    @settings(max_examples=50, deadline=None)
    @given(
        rewards=st.lists(st.floats(-100, 100), min_size=1, max_size=30),
        gamma=st.floats(0.0, 1.0),
    )
    def test_returns_recurrence(self, rewards, gamma):
        """G_t = r_t + γ·G_{t+1} for all t."""
        returns = discounted_returns(rewards, gamma)
        for t in range(len(rewards) - 1):
            assert returns[t] == pytest.approx(rewards[t] + gamma * returns[t + 1], abs=1e-6)
        assert returns[-1] == pytest.approx(rewards[-1])

    @settings(max_examples=50, deadline=None)
    @given(rewards=st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_baseline_is_prefix_mean(self, rewards):
        baseline = average_reward_baseline(rewards)
        assert baseline[0] == 0.0
        for t in range(1, len(rewards)):
            assert baseline[t] == pytest.approx(np.mean(rewards[:t]), abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(rewards=st.lists(st.floats(-10, 10), min_size=2, max_size=20))
    def test_baseline_independent_of_future(self, rewards):
        """b_t must not depend on rewards at t or later (else the policy
        gradient becomes biased)."""
        baseline = average_reward_baseline(rewards)
        perturbed = list(rewards)
        perturbed[-1] += 123.0
        baseline2 = average_reward_baseline(perturbed)
        np.testing.assert_allclose(baseline[:-1], baseline2[:-1])


class TestHeftProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), num_tasks=st.integers(3, 15), num_devices=st.integers(2, 6))
    def test_heft_placement_feasible_and_ranks_topological(self, seed, num_tasks, num_devices):
        problem = make_problem(seed, num_tasks, num_devices)
        schedule = heft_placement(problem)
        problem.validate_placement(schedule.placement)
        ranks = upward_ranks(problem)
        for (u, v) in problem.graph.edges:
            assert ranks[u] > ranks[v] - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_heft_internal_schedule_respects_precedence(self, seed):
        problem = make_problem(seed, num_tasks=10)
        s = heft_placement(problem)
        cm = problem.cost_model
        for (u, v) in problem.graph.edges:
            comm = cm.comm_time((u, v), s.placement[u], s.placement[v])
            assert s.start[v] >= s.finish[u] + comm - 1e-9


class TestEftProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), task_seed=st.integers(0, 100))
    def test_eft_estimate_at_least_compute_time(self, seed, task_seed):
        problem = make_problem(seed)
        rng = np.random.default_rng(task_seed)
        placement = random_placement(problem, rng)
        task = int(rng.integers(0, problem.graph.num_tasks))
        for d, est in eft_estimates(problem, placement, task).items():
            assert est >= problem.cost_model.compute_time(task, d) - 1e-9


class TestObjectiveProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), placement_seed=st.integers(0, 100))
    def test_makespan_at_least_cp_bound(self, seed, placement_seed):
        problem = make_problem(seed)
        placement = random_placement(problem, np.random.default_rng(placement_seed))
        makespan = MakespanObjective().evaluate(problem.cost_model, placement)
        assert makespan >= cp_min_lower_bound(problem.cost_model) - 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), placement_seed=st.integers(0, 100))
    def test_total_cost_at_least_sum_of_min_computes(self, seed, placement_seed):
        problem = make_problem(seed)
        placement = random_placement(problem, np.random.default_rng(placement_seed))
        cost = TotalCostObjective().evaluate(problem.cost_model, placement)
        floor = sum(
            problem.cost_model.min_compute_time(i) for i in range(problem.graph.num_tasks)
        )
        assert cost >= floor - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_colocated_placement_has_zero_comm_cost(self, seed):
        problem = make_problem(seed)
        cm = problem.cost_model
        # Find a device feasible for all tasks, if any.
        common = set(range(problem.network.num_devices))
        for feas in problem.feasible_sets:
            common &= set(feas)
        if not common:
            return
        d = min(common)
        placement = [d] * problem.graph.num_tasks
        expected = sum(cm.compute_time(i, d) for i in range(problem.graph.num_tasks))
        assert TotalCostObjective().evaluate(cm, placement) == pytest.approx(expected)


class TestGpNetMaskProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31), placement_seed=st.integers(0, 100))
    def test_actions_and_masks_consistent(self, seed, placement_seed):
        from repro.core import PlacementEnv

        problem = make_problem(seed)
        env = PlacementEnv(problem, MakespanObjective())
        state = env.reset(rng=np.random.default_rng(placement_seed))
        mask = env.action_mask()
        # Exactly |A| - |V| actions survive the no-op mask on reset
        # (each task contributes one pivot).
        assert mask.sum() == problem.num_actions - problem.graph.num_tasks
        # Taking any allowed action yields a feasible placement.
        action = int(np.flatnonzero(mask)[0])
        next_state, _, _ = env.step(action)
        problem.validate_placement(next_state.placement)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**31))
    def test_noise_free_objective_deterministic_across_rebuilds(self, seed):
        problem = make_problem(seed)
        placement = random_placement(problem, np.random.default_rng(0))
        v1 = MakespanObjective().evaluate(problem.cost_model, placement)
        v2 = MakespanObjective().evaluate(problem.cost_model, placement)
        assert v1 == v2


class TestStoppingProperties:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.floats(0.1, 100), min_size=2, max_size=30))
    def test_fixed_budget_fires_exactly_once_at_budget(self, values):
        best = np.minimum.accumulate(values).tolist()
        budget = len(values) - 1
        criterion = FixedBudget(steps=budget)
        fired = [criterion.should_stop(values[: t + 1], best[: t + 1]) for t in range(len(values))]
        assert fired[-1] is True
        assert not any(fired[:-1])

    @settings(max_examples=30, deadline=None)
    @given(
        values=st.lists(st.floats(0.1, 100), min_size=3, max_size=30),
        patience=st.integers(1, 5),
    )
    def test_patience_never_fires_while_improving_strictly(self, values, patience):
        # A strictly improving best series never triggers patience.
        # (Improvements below the criterion's 1e-12 stall tolerance are
        # deliberately treated as stalls, so enforce a visible gap.)
        strictly: list[float] = []
        for v in sorted((float(v) for v in values), reverse=True):
            if not strictly or strictly[-1] - v > 1e-9:
                strictly.append(v)
        if len(strictly) < 2:
            return
        best = strictly
        criterion = Patience(patience=patience)
        for t in range(1, len(best)):
            assert not criterion.should_stop(best[: t + 1], best[: t + 1])
